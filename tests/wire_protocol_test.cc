#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "eval/estimator.h"
#include "serve/client_channel.h"
#include "serve/frontend.h"
#include "serve/wire.h"
#include "serve/wire_binary.h"
#include "util/net.h"
#include "util/rng.h"

// The binary wire path end to end: the frame codec (bit-exact floats,
// hostile-input rejection), the command registry, per-connection protocol
// negotiation on a live frontend (mixed JSON + binary connections), the
// malformed-frame connection policy, the multi-loop frontend, and the
// pipelined ClientChannel's out-of-order tag correlation.

namespace selnet::serve {
namespace {

using tensor::Matrix;

// ----------------------------------------------------------- frame codec ---

TEST(BinaryCodecTest, RequestFrameRoundTripsBitIdentically) {
  EstimateRequest req;
  req.model = "route-binary";
  req.tag = 901;
  req.wire_trace = true;
  util::Rng rng(17);
  for (int i = 0; i < 24; ++i) {
    req.x.push_back(float(rng.Uniform(-100.0, 100.0)));
  }
  // Deliberately awkward floats: denormal-adjacent, negative zero, huge.
  req.thresholds = {1e-38f, -0.0f, 3.14159274f, 1e30f};

  std::string buf;
  AppendRequestFrame(&buf, req);
  ASSERT_GE(buf.size(), kFrameHeaderBytes);

  FrameHeader hdr;
  std::string err;
  ASSERT_EQ(PeelFrameHeader(buf.data(), buf.size(), 1 << 20, &hdr, &err),
            FramePeel::kFrame)
      << err;
  EXPECT_EQ(hdr.type, FrameType::kEstimate);
  EXPECT_EQ(hdr.tag, req.tag);
  EXPECT_EQ(hdr.version, kWireVersion);
  ASSERT_EQ(buf.size(), kFrameHeaderBytes + hdr.payload_len);

  EstimateRequest parsed;
  ASSERT_TRUE(DecodeRequestPayload(buf.data() + kFrameHeaderBytes,
                                   hdr.payload_len,
                                   std::chrono::steady_clock::now(), &parsed)
                  .ok());
  EXPECT_EQ(parsed.model, req.model);
  EXPECT_TRUE(parsed.wire_trace);
  EXPECT_FALSE(parsed.has_deadline());
  ASSERT_EQ(parsed.x.size(), req.x.size());
  for (size_t i = 0; i < req.x.size(); ++i) {
    // memcmp, not ==: bit-exact even for -0.0f.
    EXPECT_EQ(std::memcmp(&parsed.x[i], &req.x[i], sizeof(float)), 0)
        << "x[" << i << "]";
  }
  ASSERT_EQ(parsed.thresholds.size(), req.thresholds.size());
  for (size_t i = 0; i < req.thresholds.size(); ++i) {
    EXPECT_EQ(std::memcmp(&parsed.thresholds[i], &req.thresholds[i],
                          sizeof(float)),
              0);
  }
}

TEST(BinaryCodecTest, DeadlineTravelsAsRelativeBudget) {
  EstimateRequest req;
  req.x = {1.0f};
  req.thresholds = {0.5f};
  auto now = std::chrono::steady_clock::now();
  req.deadline = now + std::chrono::milliseconds(500);

  std::string buf;
  AppendRequestFrame(&buf, req);
  FrameHeader hdr;
  std::string err;
  ASSERT_EQ(PeelFrameHeader(buf.data(), buf.size(), 1 << 20, &hdr, &err),
            FramePeel::kFrame);
  // Re-anchor at a decode clock 100ms ahead of the encode clock: the budget
  // is relative, so the decoded absolute deadline shifts with the anchor.
  auto decode_now = now + std::chrono::milliseconds(100);
  EstimateRequest parsed;
  ASSERT_TRUE(DecodeRequestPayload(buf.data() + kFrameHeaderBytes,
                                   hdr.payload_len, decode_now, &parsed)
                  .ok());
  ASSERT_TRUE(parsed.has_deadline());
  double budget_ms = std::chrono::duration<double, std::milli>(
                         parsed.deadline - decode_now)
                         .count();
  EXPECT_GT(budget_ms, 450.0);
  EXPECT_LT(budget_ms, 550.0);
}

TEST(BinaryCodecTest, ResponseFrameRoundTripsBitIdentically) {
  EstimateResponse resp;
  resp.model = "m";
  resp.version = 12345678901234ull;
  resp.cache_hits = 3;
  resp.fast_path = true;
  resp.degraded = true;
  resp.tag = 42;
  resp.estimates = {1.5f, -0.0f, 3.14159274f, 1e-30f, 123456.789f};
  resp.stage_ms = {0.1f, 0.2f, 0.3f, 0.4f, 0.0f, 0.0f, 0.0f, 0.0f};

  std::string buf;
  AppendResponseFrame(&buf, resp);
  FrameHeader hdr;
  std::string err;
  ASSERT_EQ(PeelFrameHeader(buf.data(), buf.size(), 1 << 20, &hdr, &err),
            FramePeel::kFrame);
  EXPECT_EQ(hdr.type, FrameType::kResponse);
  EXPECT_EQ(hdr.tag, resp.tag);

  EstimateResponse parsed;
  ASSERT_TRUE(DecodeResponsePayload(buf.data() + kFrameHeaderBytes,
                                    hdr.payload_len, &parsed)
                  .ok());
  EXPECT_EQ(parsed.model, resp.model);
  EXPECT_EQ(parsed.version, resp.version);
  EXPECT_EQ(parsed.cache_hits, resp.cache_hits);
  EXPECT_EQ(parsed.fast_path, resp.fast_path);
  EXPECT_EQ(parsed.degraded, resp.degraded);
  ASSERT_EQ(parsed.estimates.size(), resp.estimates.size());
  for (size_t i = 0; i < resp.estimates.size(); ++i) {
    EXPECT_EQ(std::memcmp(&parsed.estimates[i], &resp.estimates[i],
                          sizeof(float)),
              0)
        << "estimates[" << i << "]";
  }
  ASSERT_EQ(parsed.stage_ms.size(), resp.stage_ms.size());
}

TEST(BinaryCodecTest, ErrorFrameMapsToTypedStatusTaxonomy) {
  struct Case {
    const char* code;
    util::StatusCode want;
  } cases[] = {
      {"queue_full", util::StatusCode::kUnavailable},
      {"priority_shed", util::StatusCode::kUnavailable},
      {"shutdown", util::StatusCode::kUnavailable},
      {"deadline_exceeded", util::StatusCode::kDeadlineExceeded},
      {"not_found", util::StatusCode::kNotFound},
      {"", util::StatusCode::kInternal},
  };
  for (const Case& c : cases) {
    std::string buf;
    AppendErrorFrame(&buf, "boom: detail text", c.code, 77);
    FrameHeader hdr;
    std::string err;
    ASSERT_EQ(PeelFrameHeader(buf.data(), buf.size(), 1 << 20, &hdr, &err),
              FramePeel::kFrame);
    EXPECT_EQ(hdr.type, FrameType::kError);
    EXPECT_EQ(hdr.tag, 77u);
    std::string code, message;
    ASSERT_TRUE(DecodeErrorPayload(buf.data() + kFrameHeaderBytes,
                                   hdr.payload_len, &code, &message)
                    .ok());
    EXPECT_EQ(code, c.code);
    EXPECT_EQ(message, "boom: detail text");
    EXPECT_EQ(StatusFromWireError(code, message).code(), c.want) << c.code;
  }
}

TEST(BinaryCodecTest, AdminFrameWrapsJsonLineVerbatim) {
  const std::string line = "{\"cmd\":\"stats\",\"tag\":9}";
  std::string buf;
  AppendAdminFrame(&buf, FrameType::kAdmin, 9, line);
  FrameHeader hdr;
  std::string err;
  ASSERT_EQ(PeelFrameHeader(buf.data(), buf.size(), 1 << 20, &hdr, &err),
            FramePeel::kFrame);
  EXPECT_EQ(hdr.type, FrameType::kAdmin);
  EXPECT_EQ(hdr.tag, 9u);
  EXPECT_EQ(buf.substr(kFrameHeaderBytes), line);
}

TEST(BinaryCodecTest, PeelRejectsGarbageAndHostileLengths) {
  EstimateRequest req;
  req.x = {1.0f};
  req.thresholds = {0.5f};
  std::string good;
  AppendRequestFrame(&good, req);

  FrameHeader hdr;
  std::string err;
  // Short buffer: not an error, just bytes still in flight.
  EXPECT_EQ(PeelFrameHeader(good.data(), kFrameHeaderBytes - 1, 1 << 20, &hdr,
                            &err),
            FramePeel::kNeedMore);
  EXPECT_EQ(PeelFrameHeader(good.data(), 0, 1 << 20, &hdr, &err),
            FramePeel::kNeedMore);

  // Bad magic (a JSON line can never alias a frame: '{' != 0xD5).
  std::string bad = good;
  bad[0] = '{';
  EXPECT_EQ(PeelFrameHeader(bad.data(), bad.size(), 1 << 20, &hdr, &err),
            FramePeel::kBad);
  bad = good;
  bad[1] = 'X';
  EXPECT_EQ(PeelFrameHeader(bad.data(), bad.size(), 1 << 20, &hdr, &err),
            FramePeel::kBad);

  // Unknown version.
  bad = good;
  bad[2] = char(99);
  EXPECT_EQ(PeelFrameHeader(bad.data(), bad.size(), 1 << 20, &hdr, &err),
            FramePeel::kBad);

  // Unknown frame type.
  bad = good;
  bad[3] = char(200);
  EXPECT_EQ(PeelFrameHeader(bad.data(), bad.size(), 1 << 20, &hdr, &err),
            FramePeel::kBad);

  // A hostile payload_len over the receiver's cap must be rejected BEFORE
  // any buffering decision trusts it.
  bad = good;
  bad[4] = char(0xFF);
  bad[5] = char(0xFF);
  bad[6] = char(0xFF);
  bad[7] = char(0x7F);
  EXPECT_EQ(PeelFrameHeader(bad.data(), bad.size(), 1 << 20, &hdr, &err),
            FramePeel::kBad);
  EXPECT_FALSE(err.empty());
}

TEST(BinaryCodecTest, TruncatedPayloadsAreTypedDecodeErrors) {
  EstimateRequest req;
  req.model = "m";
  req.tag = 5;
  for (int i = 0; i < 8; ++i) req.x.push_back(float(i));
  req.thresholds = {0.25f, 0.5f};
  std::string buf;
  AppendRequestFrame(&buf, req);
  const char* payload = buf.data() + kFrameHeaderBytes;
  const size_t len = buf.size() - kFrameHeaderBytes;

  EstimateRequest out;
  auto now = std::chrono::steady_clock::now();
  EXPECT_FALSE(DecodeRequestPayload(payload, 0, now, &out).ok());
  EXPECT_FALSE(DecodeRequestPayload(payload, len / 2, now, &out).ok());
  EXPECT_FALSE(DecodeRequestPayload(payload, len - 1, now, &out).ok());

  // An array count that claims more elements than the payload holds is a
  // typed error, never an allocation of the claimed size.
  std::string hostile(buf.substr(kFrameHeaderBytes));
  // The x count sits right after flags + model (u8 len + bytes).
  size_t count_at = 1 + 1 + req.model.size();
  hostile[count_at] = char(0xFF);
  hostile[count_at + 1] = char(0xFF);
  hostile[count_at + 2] = char(0xFF);
  hostile[count_at + 3] = char(0x7F);
  EXPECT_FALSE(
      DecodeRequestPayload(hostile.data(), hostile.size(), now, &out).ok());
}

// ------------------------------------------------------ command registry ---

TEST(CommandRegistryTest, TableIsExhaustiveAndBijective) {
  for (size_t i = 0; i < kNumCommands; ++i) {
    const Command cmd = Command(i);
    const CommandInfo* info = FindCommand(cmd);
    ASSERT_NE(info, nullptr) << "command " << i;
    EXPECT_EQ(info->cmd, cmd) << "table order must match the enum";
    EXPECT_GE(info->since_version, 1);
    EXPECT_LE(info->since_version, kWireVersion);
    // By-name lookup lands on the same row.
    const CommandInfo* by_name = FindCommand(std::string(info->name));
    ASSERT_NE(by_name, nullptr) << info->name;
    EXPECT_EQ(by_name->cmd, cmd);
  }
  EXPECT_EQ(FindCommand(std::string("bogus")), nullptr);
  EXPECT_EQ(FindCommand(std::string("")), nullptr);
  // Spot-check the wire names are the protocol's, not the enum's.
  EXPECT_STREQ(FindCommand(Command::kStatsWire)->name, "stats_wire");
  EXPECT_STREQ(FindCommand(Command::kXferCommit)->name, "xfer_commit");
  EXPECT_STREQ(FindCommand(Command::kHello)->name, "hello");
}

TEST(CommandRegistryTest, HelloLineRoundTrips) {
  std::string line = SerializeHello(WireProto::kBinary, kWireVersion);
  AdminRequest admin;
  ASSERT_TRUE(ParseAdminLine(line, &admin).ok()) << line;
  EXPECT_EQ(admin.cmd, "hello");
  EXPECT_EQ(admin.proto, "binary");
  EXPECT_EQ(admin.max_version, kWireVersion);
}

// ------------------------------------------------------- live frontend ----

// Deterministic servable: estimate = bias + sum(x) + t. Distinguishable per
// request, so correlation bugs surface as value mismatches.
class AffineEstimator : public eval::Estimator {
 public:
  explicit AffineEstimator(float bias) : bias_(bias) {}
  std::string Name() const override { return "Affine"; }
  bool IsConsistent() const override { return true; }
  void Fit(const eval::TrainContext&) override {}
  Matrix Predict(const Matrix& x, const Matrix& t) override {
    Matrix y(x.rows(), 1);
    for (size_t i = 0; i < x.rows(); ++i) {
      float sum = bias_;
      for (size_t j = 0; j < x.cols(); ++j) sum += x(i, j);
      y(i, 0) = sum + t(i, 0);
    }
    return y;
  }

 private:
  float bias_;
};

ServerConfig CheapServerConfig(size_t dim = 4) {
  ServerConfig cfg;
  cfg.dim = dim;
  cfg.enable_cache = false;
  cfg.scheduler.max_batch = 16;
  cfg.scheduler.max_delay_ms = 0.2;
  return cfg;
}

class BinaryFrontendFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<SelNetServer>(CheapServerConfig());
    server_->Publish(std::make_shared<AffineEstimator>(10.0f));
    frontend_ = std::make_unique<NetFrontend>(FrontendConfig{}, server_.get());
    ASSERT_TRUE(frontend_->status().ok()) << frontend_->status().ToString();
    ASSERT_TRUE(client_.Connect("127.0.0.1", frontend_->port()).ok());
    client_.set_recv_timeout_ms(10000);
    ASSERT_TRUE(client_.Hello().ok());
    ASSERT_EQ(client_.proto(), WireProto::kBinary);
  }

  void TearDown() override {
    client_.Close();
    frontend_.reset();
    server_.reset();
  }

  std::unique_ptr<SelNetServer> server_;
  std::unique_ptr<NetFrontend> frontend_;
  NetClient client_;
};

TEST_F(BinaryFrontendFixture, BinaryRoundtripMatchesInProcessBitIdentically) {
  util::Rng rng(23);
  for (int i = 0; i < 20; ++i) {
    EstimateRequest req;
    for (int j = 0; j < 4; ++j) req.x.push_back(float(rng.Uniform()));
    for (int j = 0; j <= i % 3; ++j) {
      req.thresholds.push_back(float(rng.Uniform()));
    }
    req.tag = uint64_t(i + 1);

    util::Result<EstimateResponse> wire = client_.Roundtrip(req);
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    EstimateResponse direct = server_->Submit(req).get();
    ASSERT_EQ(wire.ValueOrDie().estimates.size(), direct.estimates.size());
    for (size_t k = 0; k < direct.estimates.size(); ++k) {
      // The acceptance bar: raw IEEE-754 words over the wire, EXPECT_EQ.
      EXPECT_EQ(wire.ValueOrDie().estimates[k], direct.estimates[k])
          << "request " << i << " threshold " << k;
    }
    EXPECT_EQ(wire.ValueOrDie().tag, req.tag);
    EXPECT_EQ(wire.ValueOrDie().model, direct.model);
  }
  FrontendStats stats = frontend_->Stats();
  EXPECT_EQ(stats.requests, 20u);
  EXPECT_EQ(stats.responses, 20u);
  EXPECT_EQ(stats.parse_errors, 0u);
}

TEST_F(BinaryFrontendFixture, MixedJsonAndBinaryConnectionsCoexist) {
  // A second, un-negotiated connection speaks JSON to the SAME frontend
  // while this fixture's connection speaks binary.
  NetClient json;
  ASSERT_TRUE(json.Connect("127.0.0.1", frontend_->port()).ok());
  json.set_recv_timeout_ms(10000);
  ASSERT_EQ(json.proto(), WireProto::kJson);

  EstimateRequest req;
  req.x = {0.5f, 0.25f, 0.125f, 0.0625f};
  req.thresholds = {1.0f};
  for (int i = 0; i < 10; ++i) {
    req.tag = uint64_t(100 + i);
    util::Result<EstimateResponse> b = client_.Roundtrip(req);
    util::Result<EstimateResponse> j = json.Roundtrip(req);
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ASSERT_TRUE(j.ok()) << j.status().ToString();
    // Same request, same backend: both framings must produce the same bits.
    ASSERT_EQ(b.ValueOrDie().estimates.size(), j.ValueOrDie().estimates.size());
    EXPECT_EQ(b.ValueOrDie().estimates[0], j.ValueOrDie().estimates[0]);
  }
  EXPECT_EQ(frontend_->Stats().requests, 20u);
}

TEST_F(BinaryFrontendFixture, AdminPlaneRidesBinaryFrames) {
  EstimateRequest req;
  req.x = {0.0f, 0.0f, 0.0f, 0.0f};
  req.thresholds = {0.5f};
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(client_.Roundtrip(req).ok());

  // The raw admin surface: one JSON line inside an admin frame.
  util::Result<std::string> stats = client_.Admin("stats", 31);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats.ValueOrDie().find("\"stats\""), std::string::npos);
  EXPECT_NE(stats.ValueOrDie().find("\"tag\":31"), std::string::npos);
  EXPECT_NE(stats.ValueOrDie().find("\"requests\":4"), std::string::npos);

  // The typed surface: health ack, metrics exposition, machine scrape.
  ClientCall health;
  health.cmd = Command::kHealth;
  health.admin.tag = 7;
  ASSERT_TRUE(client_.Call(health).ok());

  util::Result<std::string> metrics = client_.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics.ValueOrDie().find("selnet_requests_total"),
            std::string::npos);

  util::Result<StatsSnapshot> scrape = client_.StatsWire();
  ASSERT_TRUE(scrape.ok()) << scrape.status().ToString();
  EXPECT_EQ(scrape.ValueOrDie().requests, 4u);

  // Unknown commands still answer (with an error line), connection lives.
  util::Result<std::string> unknown = client_.Admin("bogus", 3);
  ASSERT_TRUE(unknown.ok());
  EXPECT_NE(unknown.ValueOrDie().find("unknown admin cmd"), std::string::npos);
  ASSERT_TRUE(client_.Roundtrip(req).ok());
}

TEST_F(BinaryFrontendFixture, UnknownRouteIsTypedNotFoundAndConnSurvives) {
  EstimateRequest req;
  req.model = "never-published";
  req.x = {0.0f, 0.0f, 0.0f, 0.0f};
  req.thresholds = {1.0f};
  req.tag = 9;
  util::Result<EstimateResponse> bad = client_.Roundtrip(req);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), util::StatusCode::kNotFound)
      << bad.status().ToString();
  EXPECT_NE(bad.status().message().find("never-published"), std::string::npos);

  // A per-request failure never costs the connection.
  req.model.clear();
  ASSERT_TRUE(client_.Roundtrip(req).ok());
}

TEST_F(BinaryFrontendFixture, BadMagicGetsOneErrorFrameThenClose) {
  // 16 bytes of garbage where a frame header should be: framing is lost, so
  // the documented policy is one kError frame (tag 0, code "bad_frame") and
  // a close — mirroring the JSON oversized-line policy.
  ASSERT_TRUE(client_.SendRaw("XXXXXXXXXXXXXXXX").ok());
  FrameHeader hdr;
  util::Result<std::string> payload = client_.ReadFrame(&hdr);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  EXPECT_EQ(hdr.type, FrameType::kError);
  EXPECT_EQ(hdr.tag, 0u);
  std::string code, message;
  ASSERT_TRUE(DecodeErrorPayload(payload.ValueOrDie().data(),
                                 payload.ValueOrDie().size(), &code, &message)
                  .ok());
  EXPECT_EQ(code, "bad_frame");
  // The server closes after flushing the error.
  util::Result<std::string> eof = client_.ReadFrame(&hdr);
  EXPECT_FALSE(eof.ok());
  EXPECT_GE(frontend_->Stats().parse_errors, 1u);

  // The frontend itself is fine: a fresh connection negotiates and serves.
  NetClient again;
  ASSERT_TRUE(again.Connect("127.0.0.1", frontend_->port()).ok());
  again.set_recv_timeout_ms(10000);
  ASSERT_TRUE(again.Hello().ok());
  EstimateRequest req;
  req.x = {0.0f, 0.0f, 0.0f, 0.0f};
  req.thresholds = {0.5f};
  EXPECT_TRUE(again.Roundtrip(req).ok());
}

TEST_F(BinaryFrontendFixture, OversizedFrameLengthIsRejectedThenClosed) {
  // A header whose payload_len exceeds the server's cap (max_line_bytes,
  // default 1 MiB): rejected from the header alone, before any buffering.
  std::string hdr_bytes;
  AppendAdminFrame(&hdr_bytes, FrameType::kAdmin, 5, "{}");
  hdr_bytes.resize(kFrameHeaderBytes);  // Header only.
  hdr_bytes[4] = char(0xFF);            // payload_len = 0x7FFFFFFF.
  hdr_bytes[5] = char(0xFF);
  hdr_bytes[6] = char(0xFF);
  hdr_bytes[7] = char(0x7F);
  ASSERT_TRUE(client_.SendRaw(hdr_bytes).ok());
  FrameHeader hdr;
  util::Result<std::string> payload = client_.ReadFrame(&hdr);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  EXPECT_EQ(hdr.type, FrameType::kError);
  std::string code, message;
  ASSERT_TRUE(DecodeErrorPayload(payload.ValueOrDie().data(),
                                 payload.ValueOrDie().size(), &code, &message)
                  .ok());
  EXPECT_EQ(code, "bad_frame");
  EXPECT_FALSE(client_.ReadFrame(&hdr).ok());  // Closed.
}

TEST_F(BinaryFrontendFixture, TruncatedFrameIsJustBytesInFlight) {
  EstimateRequest req;
  req.x = {1.0f, 1.0f, 1.0f, 1.0f};
  req.thresholds = {0.5f};
  req.tag = 6;
  std::string frame;
  AppendRequestFrame(&frame, req);

  // First half only: no reply (and no error) until the rest arrives.
  ASSERT_TRUE(client_.SendRaw(frame.substr(0, frame.size() / 2)).ok());
  client_.set_recv_timeout_ms(100);
  FrameHeader hdr;
  util::Result<std::string> early = client_.ReadFrame(&hdr);
  ASSERT_FALSE(early.ok());
  EXPECT_EQ(early.status().code(), util::StatusCode::kDeadlineExceeded);

  // Completing the frame completes the request on the same connection.
  ASSERT_TRUE(client_.SendRaw(frame.substr(frame.size() / 2)).ok());
  client_.set_recv_timeout_ms(10000);
  util::Result<std::string> payload = client_.ReadFrame(&hdr);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  EXPECT_EQ(hdr.type, FrameType::kResponse);
  EXPECT_EQ(hdr.tag, 6u);
  EstimateResponse resp;
  ASSERT_TRUE(DecodeResponsePayload(payload.ValueOrDie().data(),
                                    payload.ValueOrDie().size(), &resp)
                  .ok());
  EXPECT_FLOAT_EQ(resp.estimates[0], 14.5f);  // 10 + 4*1 + 0.5.
}

TEST_F(BinaryFrontendFixture, ClientSentServerFrameTypeIsRejected) {
  // A client has no business sending kResponse; the server treats it like a
  // framing violation (typed error with the frame's tag, then close).
  EstimateResponse resp;
  resp.estimates = {1.0f};
  resp.tag = 13;
  std::string frame;
  AppendResponseFrame(&frame, resp);
  ASSERT_TRUE(client_.SendRaw(frame).ok());
  FrameHeader hdr;
  util::Result<std::string> payload = client_.ReadFrame(&hdr);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  EXPECT_EQ(hdr.type, FrameType::kError);
  EXPECT_EQ(hdr.tag, 13u);
  EXPECT_FALSE(client_.ReadFrame(&hdr).ok());  // Closed.
}

TEST(HelloNegotiationTest, JsonPreferenceSkipsNegotiation) {
  SelNetServer server(CheapServerConfig());
  server.Publish(std::make_shared<AffineEstimator>(0.0f));
  NetFrontend frontend(FrontendConfig{}, &server);
  ASSERT_TRUE(frontend.status().ok());
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", frontend.port()).ok());
  ASSERT_TRUE(client.Hello(WireProto::kJson).ok());
  EXPECT_EQ(client.proto(), WireProto::kJson);
  EstimateRequest req;
  req.x = {0.0f, 0.0f, 0.0f, 0.0f};
  req.thresholds = {1.0f};
  EXPECT_TRUE(client.Roundtrip(req).ok());
}

TEST(HelloNegotiationTest, HandWrittenHelloLineGetsVersionedAck) {
  SelNetServer server(CheapServerConfig());
  server.Publish(std::make_shared<AffineEstimator>(0.0f));
  NetFrontend frontend(FrontendConfig{}, &server);
  ASSERT_TRUE(frontend.status().ok());
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", frontend.port()).ok());
  client.set_recv_timeout_ms(10000);
  // A client asking for a FUTURE version negotiates down to the server max.
  ASSERT_TRUE(
      client
          .SendRaw("{\"cmd\":\"hello\",\"proto\":\"binary\","
                   "\"max_version\":200,\"tag\":4}\n")
          .ok());
  util::Result<std::string> ack = client.ReadLine();
  ASSERT_TRUE(ack.ok());
  util::Result<HelloResult> hello = ParseHelloReply(ack.ValueOrDie());
  ASSERT_TRUE(hello.ok()) << hello.status().ToString();
  EXPECT_EQ(hello.ValueOrDie().proto, WireProto::kBinary);
  EXPECT_EQ(hello.ValueOrDie().version, kWireVersion);
  // The ack itself arrived as JSON; everything AFTER it is binary.
  EstimateRequest req;
  req.x = {0.0f, 0.0f, 0.0f, 0.0f};
  req.thresholds = {1.0f};
  req.tag = 2;
  std::string frame;
  AppendRequestFrame(&frame, req);
  ASSERT_TRUE(client.SendRaw(frame).ok());
  FrameHeader hdr;
  util::Result<std::string> payload = client.ReadFrame(&hdr);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  EXPECT_EQ(hdr.type, FrameType::kResponse);
  EXPECT_EQ(hdr.tag, 2u);
}

// -------------------------------------------------- multi-loop frontend ---

TEST(MultiLoopFrontendTest, ShardedAcceptorServesManyMixedConnections) {
  SelNetServer server(CheapServerConfig());
  server.Publish(std::make_shared<AffineEstimator>(1.0f));
  FrontendConfig fcfg;
  fcfg.num_loops = 3;
  NetFrontend frontend(fcfg, &server);
  ASSERT_TRUE(frontend.status().ok()) << frontend.status().ToString();

  const int kClients = 6, kPerClient = 10;
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      NetClient client;
      if (!client.Connect("127.0.0.1", frontend.port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      client.set_recv_timeout_ms(10000);
      // Half the clients negotiate binary, half stay JSON.
      if (c % 2 == 0 && !client.Hello().ok()) {
        failures.fetch_add(1);
        return;
      }
      EstimateRequest req;
      req.x = {float(c), 0.0f, 0.0f, 0.0f};
      req.thresholds = {0.5f};
      for (int i = 0; i < kPerClient; ++i) {
        req.tag = uint64_t(c * 100 + i);
        util::Result<EstimateResponse> resp = client.Roundtrip(req);
        if (!resp.ok() || resp.ValueOrDie().tag != req.tag ||
            resp.ValueOrDie().estimates[0] != 1.0f + float(c) + 0.5f) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0u);
  FrontendStats stats = frontend.Stats();
  EXPECT_EQ(stats.requests, uint64_t(kClients * kPerClient));
  EXPECT_EQ(stats.responses, stats.requests);
  EXPECT_EQ(stats.connections_accepted, uint64_t(kClients));
}

TEST(MultiLoopFrontendTest, ReuseportModeServesWhenAvailable) {
  SelNetServer server(CheapServerConfig());
  server.Publish(std::make_shared<AffineEstimator>(0.0f));
  FrontendConfig fcfg;
  fcfg.num_loops = 2;
  fcfg.so_reuseport = true;  // Falls back to the acceptor if unsupported.
  NetFrontend frontend(fcfg, &server);
  ASSERT_TRUE(frontend.status().ok()) << frontend.status().ToString();
  for (int c = 0; c < 4; ++c) {
    NetClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", frontend.port()).ok());
    client.set_recv_timeout_ms(10000);
    ASSERT_TRUE(client.Hello().ok());
    EstimateRequest req;
    req.x = {1.0f, 0.0f, 0.0f, 0.0f};
    req.thresholds = {0.5f};
    util::Result<EstimateResponse> resp = client.Roundtrip(req);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_FLOAT_EQ(resp.ValueOrDie().estimates[0], 1.5f);
  }
  EXPECT_EQ(frontend.Stats().requests, 4u);
}

// -------------------------------------------------- pipelined channel -----

class ChannelFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<SelNetServer>(CheapServerConfig());
    server_->Publish(std::make_shared<AffineEstimator>(10.0f));
    frontend_ = std::make_unique<NetFrontend>(FrontendConfig{}, server_.get());
    ASSERT_TRUE(frontend_->status().ok());
  }

  void TearDown() override {
    frontend_.reset();
    server_.reset();
  }

  ClientChannelConfig ChannelCfg(WireProto preferred = WireProto::kBinary) {
    ClientChannelConfig cfg;
    cfg.address = "127.0.0.1";
    cfg.port = frontend_->port();
    cfg.preferred_proto = preferred;
    cfg.recv_timeout_ms = 10000;
    return cfg;
  }

  std::unique_ptr<SelNetServer> server_;
  std::unique_ptr<NetFrontend> frontend_;
};

// Collects completions for a known burst and lets the test await them all.
struct Collector {
  std::mutex mu;
  std::condition_variable cv;
  size_t done = 0;
  size_t errors = 0;
  std::vector<std::pair<uint64_t, float>> got;  // (caller tag, estimate).

  SelNetServer::ResponseFn Make() {
    return [this](EstimateResponse resp, std::exception_ptr error) {
      std::lock_guard<std::mutex> lock(mu);
      if (error) {
        ++errors;
      } else {
        got.emplace_back(resp.tag, resp.estimates.empty() ? -1.0f
                                                          : resp.estimates[0]);
      }
      ++done;
      cv.notify_all();
    };
  }
  void Await(size_t n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, std::chrono::seconds(30), [&] { return done >= n; });
  }
};

TEST_F(ChannelFixture, PipelinedCallsCorrelateOutOfOrderReplies) {
  ClientChannel channel(ChannelCfg());
  ASSERT_TRUE(channel.Connect().ok());
  EXPECT_EQ(channel.proto(), WireProto::kBinary);
  EXPECT_TRUE(channel.up());

  // 48 requests pipelined without awaiting: the scheduler batches them
  // freely, so replies interleave; every completion must carry ITS request's
  // value and caller tag. Caller tags are deliberately non-sequential and
  // colliding with nothing the channel issues internally.
  const int kBurst = 48;
  Collector collector;
  for (int i = 0; i < kBurst; ++i) {
    EstimateRequest req;
    req.x = {float(i), 0.0f, 0.0f, 0.0f};
    req.thresholds = {0.5f};
    req.tag = uint64_t(1000 + 7 * i);
    channel.Call(std::move(req), collector.Make());
  }
  collector.Await(kBurst);
  ASSERT_EQ(collector.done, size_t(kBurst));
  EXPECT_EQ(collector.errors, 0u);
  ASSERT_EQ(collector.got.size(), size_t(kBurst));
  for (const auto& [tag, estimate] : collector.got) {
    ASSERT_GE(tag, 1000u);
    const uint64_t i = (tag - 1000) / 7;
    EXPECT_EQ((tag - 1000) % 7, 0u);
    EXPECT_FLOAT_EQ(estimate, 10.0f + float(i) + 0.5f) << "tag " << tag;
  }
  EXPECT_EQ(channel.pending(), 0u);
  channel.Close();
}

TEST_F(ChannelFixture, CallManyShipsWholeBurstAsOneWrite) {
  ClientChannel channel(ChannelCfg());
  ASSERT_TRUE(channel.Connect().ok());

  const int kBurst = 16;
  Collector collector;
  std::vector<SelNetServer::Submission> batch;
  for (int i = 0; i < kBurst; ++i) {
    SelNetServer::Submission s;
    s.req.x = {float(i), 1.0f, 0.0f, 0.0f};
    s.req.thresholds = {0.25f};
    s.req.tag = uint64_t(i + 1);
    s.done = collector.Make();
    batch.push_back(std::move(s));
  }
  channel.CallMany(std::move(batch));
  collector.Await(kBurst);
  ASSERT_EQ(collector.done, size_t(kBurst));
  EXPECT_EQ(collector.errors, 0u);
  for (const auto& [tag, estimate] : collector.got) {
    EXPECT_FLOAT_EQ(estimate, 10.0f + float(tag - 1) + 1.0f + 0.25f)
        << "tag " << tag;
  }
  channel.Close();
}

TEST_F(ChannelFixture, JsonModeServesIdentically) {
  ClientChannel channel(ChannelCfg(WireProto::kJson));
  ASSERT_TRUE(channel.Connect().ok());
  EXPECT_EQ(channel.proto(), WireProto::kJson);

  Collector collector;
  for (int i = 0; i < 8; ++i) {
    EstimateRequest req;
    req.x = {float(i), 0.0f, 0.0f, 0.0f};
    req.thresholds = {0.5f};
    req.tag = uint64_t(i + 1);
    channel.Call(std::move(req), collector.Make());
  }
  collector.Await(8);
  ASSERT_EQ(collector.done, 8u);
  EXPECT_EQ(collector.errors, 0u);
  for (const auto& [tag, estimate] : collector.got) {
    EXPECT_FLOAT_EQ(estimate, 10.0f + float(tag - 1) + 0.5f);
  }
  channel.Close();
}

TEST_F(ChannelFixture, CallWithoutConnectionFailsFastUnavailable) {
  ClientChannel channel(ChannelCfg());
  // Never connected: the completion fires immediately from this thread with
  // the retryable taxonomy code.
  EstimateRequest req;
  req.x = {0.0f, 0.0f, 0.0f, 0.0f};
  req.thresholds = {0.5f};
  req.tag = 3;
  bool fired = false;
  channel.Call(std::move(req),
               [&](EstimateResponse resp, std::exception_ptr error) {
                 fired = true;
                 EXPECT_EQ(resp.tag, 3u);
                 ASSERT_TRUE(error);
                 try {
                   std::rethrow_exception(error);
                 } catch (const RemoteError& e) {
                   EXPECT_EQ(e.code(), util::StatusCode::kUnavailable);
                 } catch (...) {
                   ADD_FAILURE() << "expected RemoteError";
                 }
               });
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace selnet::serve
