#include <gtest/gtest.h>

#include <cmath>

#include "tensor/blas.h"
#include "tensor/matrix.h"
#include "util/rng.h"

namespace selnet::tensor {
namespace {

Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      c(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

void ExpectNear(const Matrix& a, const Matrix& b, float tol = 1e-4f) {
  ASSERT_TRUE(a.SameShape(b));
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a.data()[i], b.data()[i], tol) << "at flat index " << i;
  }
}

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  m(1, 2) = 7.0f;
  EXPECT_FLOAT_EQ(m(1, 2), 7.0f);
  EXPECT_FLOAT_EQ(m(0, 0), 1.5f);
}

TEST(MatrixTest, EyeAndTranspose) {
  Matrix eye = Matrix::Eye(3);
  ExpectNear(eye, eye.Transposed());
  util::Rng rng(1);
  Matrix m = Matrix::Gaussian(4, 7, &rng);
  Matrix mtt = m.Transposed().Transposed();
  ExpectNear(m, mtt);
}

TEST(MatrixTest, RowAndColSlices) {
  Matrix m(3, 4);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 4; ++c) m(r, c) = static_cast<float>(r * 10 + c);
  }
  Matrix rows = m.RowSlice(1, 3);
  EXPECT_EQ(rows.rows(), 2u);
  EXPECT_FLOAT_EQ(rows(0, 0), 10.0f);
  Matrix cols = m.ColSlice(2, 4);
  EXPECT_EQ(cols.cols(), 2u);
  EXPECT_FLOAT_EQ(cols(2, 1), 23.0f);
}

TEST(MatrixTest, ReshapedPreservesRowMajorOrder) {
  Matrix m(2, 3);
  for (size_t i = 0; i < 6; ++i) m.data()[i] = static_cast<float>(i);
  Matrix r = m.Reshaped(3, 2);
  EXPECT_FLOAT_EQ(r(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(r(2, 0), 4.0f);
}

TEST(MatrixTest, Reductions) {
  Matrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = -2;
  m(1, 0) = 3;
  m(1, 1) = 4;
  EXPECT_DOUBLE_EQ(m.Sum(), 6.0);
  EXPECT_FLOAT_EQ(m.Max(), 4.0f);
  EXPECT_FLOAT_EQ(m.Min(), -2.0f);
  EXPECT_NEAR(m.Norm(), std::sqrt(1.0 + 4 + 9 + 16), 1e-6);
}

TEST(MatrixTest, AllFiniteDetectsNan) {
  Matrix m(2, 2, 1.0f);
  EXPECT_TRUE(m.AllFinite());
  m(1, 1) = std::nanf("");
  EXPECT_FALSE(m.AllFinite());
}

struct GemmCase {
  size_t m, k, n;
  bool ta, tb;
};

class GemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmTest, MatchesNaive) {
  GemmCase c = GetParam();
  util::Rng rng(c.m * 100 + c.k * 10 + c.n + (c.ta ? 1000 : 0) + (c.tb ? 2000 : 0));
  Matrix a = c.ta ? Matrix::Gaussian(c.k, c.m, &rng) : Matrix::Gaussian(c.m, c.k, &rng);
  Matrix b = c.tb ? Matrix::Gaussian(c.n, c.k, &rng) : Matrix::Gaussian(c.k, c.n, &rng);
  Matrix out(c.m, c.n);
  Gemm(a, c.ta, b, c.tb, 1.0f, 0.0f, &out);
  Matrix expect = NaiveMatMul(c.ta ? a.Transposed() : a, c.tb ? b.Transposed() : b);
  ExpectNear(out, expect, 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, GemmTest,
    ::testing::Values(GemmCase{3, 4, 5, false, false},
                      GemmCase{3, 4, 5, true, false},
                      GemmCase{3, 4, 5, false, true},
                      GemmCase{3, 4, 5, true, true},
                      GemmCase{1, 1, 1, false, false},
                      GemmCase{17, 31, 7, false, false},
                      GemmCase{17, 31, 7, true, false},
                      GemmCase{8, 1, 9, false, true},
                      GemmCase{1, 64, 1, false, false}));

TEST(GemmTest, BetaAccumulates) {
  util::Rng rng(9);
  Matrix a = Matrix::Gaussian(3, 3, &rng);
  Matrix b = Matrix::Gaussian(3, 3, &rng);
  Matrix out = Matrix::Ones(3, 3);
  Gemm(a, false, b, false, 1.0f, 1.0f, &out);
  Matrix expect = Add(NaiveMatMul(a, b), Matrix::Ones(3, 3));
  ExpectNear(out, expect, 1e-3f);
}

TEST(GemmTest, AlphaScales) {
  util::Rng rng(10);
  Matrix a = Matrix::Gaussian(2, 4, &rng);
  Matrix b = Matrix::Gaussian(4, 2, &rng);
  Matrix out(2, 2);
  Gemm(a, false, b, false, 2.5f, 0.0f, &out);
  ExpectNear(out, Scale(NaiveMatMul(a, b), 2.5f), 1e-3f);
}

TEST(BlasTest, ElementwiseOps) {
  Matrix a(1, 3);
  Matrix b(1, 3);
  for (int i = 0; i < 3; ++i) {
    a(0, i) = static_cast<float>(i + 1);
    b(0, i) = static_cast<float>(2 * i);
  }
  Matrix sum = Add(a, b);
  Matrix diff = Sub(a, b);
  Matrix prod = Hadamard(a, b);
  EXPECT_FLOAT_EQ(sum(0, 2), 7.0f);
  EXPECT_FLOAT_EQ(diff(0, 2), -1.0f);
  EXPECT_FLOAT_EQ(prod(0, 1), 4.0f);
}

TEST(BlasTest, AxpyAndRowBroadcast) {
  Matrix y = Matrix::Ones(2, 2);
  Matrix x = Matrix::Full(2, 2, 2.0f);
  Axpy(0.5f, x, &y);
  EXPECT_FLOAT_EQ(y(0, 0), 2.0f);
  Matrix row(1, 2);
  row(0, 0) = 10.0f;
  row(0, 1) = 20.0f;
  AddRowVectorInPlace(&y, row);
  EXPECT_FLOAT_EQ(y(1, 1), 22.0f);
}

TEST(BlasTest, ColAndRowSums) {
  Matrix m(2, 3);
  for (size_t i = 0; i < 6; ++i) m.data()[i] = static_cast<float>(i);
  Matrix cs = ColSums(m);
  EXPECT_FLOAT_EQ(cs(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(cs(0, 2), 7.0f);
  Matrix rs = RowSums(m);
  EXPECT_FLOAT_EQ(rs(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(rs(1, 0), 12.0f);
}

TEST(BlasTest, DotAndSquaredL2) {
  std::vector<float> a = {1, 2, 3, 4, 5};
  std::vector<float> b = {5, 4, 3, 2, 1};
  EXPECT_FLOAT_EQ(Dot(a.data(), b.data(), 5), 35.0f);
  EXPECT_FLOAT_EQ(SquaredL2(a.data(), b.data(), 5), 16 + 4 + 0 + 4 + 16);
}

}  // namespace
}  // namespace selnet::tensor
