#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "tensor/blas.h"
#include "tensor/kernel_dispatch.h"
#include "tensor/matrix.h"
#include "tensor/pack_cache.h"
#include "util/rng.h"

namespace selnet::tensor {
namespace {

Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      c(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

void ExpectNear(const Matrix& a, const Matrix& b, float tol = 1e-4f) {
  ASSERT_TRUE(a.SameShape(b));
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a.data()[i], b.data()[i], tol) << "at flat index " << i;
  }
}

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  m(1, 2) = 7.0f;
  EXPECT_FLOAT_EQ(m(1, 2), 7.0f);
  EXPECT_FLOAT_EQ(m(0, 0), 1.5f);
}

TEST(MatrixTest, EyeAndTranspose) {
  Matrix eye = Matrix::Eye(3);
  ExpectNear(eye, eye.Transposed());
  util::Rng rng(1);
  Matrix m = Matrix::Gaussian(4, 7, &rng);
  Matrix mtt = m.Transposed().Transposed();
  ExpectNear(m, mtt);
}

TEST(MatrixTest, RowAndColSlices) {
  Matrix m(3, 4);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 4; ++c) m(r, c) = static_cast<float>(r * 10 + c);
  }
  Matrix rows = m.RowSlice(1, 3);
  EXPECT_EQ(rows.rows(), 2u);
  EXPECT_FLOAT_EQ(rows(0, 0), 10.0f);
  Matrix cols = m.ColSlice(2, 4);
  EXPECT_EQ(cols.cols(), 2u);
  EXPECT_FLOAT_EQ(cols(2, 1), 23.0f);
}

TEST(MatrixTest, ReshapedPreservesRowMajorOrder) {
  Matrix m(2, 3);
  for (size_t i = 0; i < 6; ++i) m.data()[i] = static_cast<float>(i);
  Matrix r = m.Reshaped(3, 2);
  EXPECT_FLOAT_EQ(r(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(r(2, 0), 4.0f);
}

TEST(MatrixTest, Reductions) {
  Matrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = -2;
  m(1, 0) = 3;
  m(1, 1) = 4;
  EXPECT_DOUBLE_EQ(m.Sum(), 6.0);
  EXPECT_FLOAT_EQ(m.Max(), 4.0f);
  EXPECT_FLOAT_EQ(m.Min(), -2.0f);
  EXPECT_NEAR(m.Norm(), std::sqrt(1.0 + 4 + 9 + 16), 1e-6);
}

TEST(MatrixTest, AllFiniteDetectsNan) {
  Matrix m(2, 2, 1.0f);
  EXPECT_TRUE(m.AllFinite());
  m(1, 1) = std::nanf("");
  EXPECT_FALSE(m.AllFinite());
}

struct GemmCase {
  size_t m, k, n;
  bool ta, tb;
};

class GemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmTest, MatchesNaive) {
  GemmCase c = GetParam();
  util::Rng rng(c.m * 100 + c.k * 10 + c.n + (c.ta ? 1000 : 0) + (c.tb ? 2000 : 0));
  Matrix a = c.ta ? Matrix::Gaussian(c.k, c.m, &rng) : Matrix::Gaussian(c.m, c.k, &rng);
  Matrix b = c.tb ? Matrix::Gaussian(c.n, c.k, &rng) : Matrix::Gaussian(c.k, c.n, &rng);
  Matrix out(c.m, c.n);
  Gemm(a, c.ta, b, c.tb, 1.0f, 0.0f, &out);
  Matrix expect = NaiveMatMul(c.ta ? a.Transposed() : a, c.tb ? b.Transposed() : b);
  ExpectNear(out, expect, 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, GemmTest,
    ::testing::Values(GemmCase{3, 4, 5, false, false},
                      GemmCase{3, 4, 5, true, false},
                      GemmCase{3, 4, 5, false, true},
                      GemmCase{3, 4, 5, true, true},
                      GemmCase{1, 1, 1, false, false},
                      GemmCase{17, 31, 7, false, false},
                      GemmCase{17, 31, 7, true, false},
                      GemmCase{8, 1, 9, false, true},
                      GemmCase{1, 64, 1, false, false}));

TEST(GemmTest, BetaAccumulates) {
  util::Rng rng(9);
  Matrix a = Matrix::Gaussian(3, 3, &rng);
  Matrix b = Matrix::Gaussian(3, 3, &rng);
  Matrix out = Matrix::Ones(3, 3);
  Gemm(a, false, b, false, 1.0f, 1.0f, &out);
  Matrix expect = Add(NaiveMatMul(a, b), Matrix::Ones(3, 3));
  ExpectNear(out, expect, 1e-3f);
}

TEST(GemmTest, AlphaScales) {
  util::Rng rng(10);
  Matrix a = Matrix::Gaussian(2, 4, &rng);
  Matrix b = Matrix::Gaussian(4, 2, &rng);
  Matrix out(2, 2);
  Gemm(a, false, b, false, 2.5f, 0.0f, &out);
  ExpectNear(out, Scale(NaiveMatMul(a, b), 2.5f), 1e-3f);
}

TEST(BlasTest, ElementwiseOps) {
  Matrix a(1, 3);
  Matrix b(1, 3);
  for (int i = 0; i < 3; ++i) {
    a(0, i) = static_cast<float>(i + 1);
    b(0, i) = static_cast<float>(2 * i);
  }
  Matrix sum = Add(a, b);
  Matrix diff = Sub(a, b);
  Matrix prod = Hadamard(a, b);
  EXPECT_FLOAT_EQ(sum(0, 2), 7.0f);
  EXPECT_FLOAT_EQ(diff(0, 2), -1.0f);
  EXPECT_FLOAT_EQ(prod(0, 1), 4.0f);
}

TEST(BlasTest, AxpyAndRowBroadcast) {
  Matrix y = Matrix::Ones(2, 2);
  Matrix x = Matrix::Full(2, 2, 2.0f);
  Axpy(0.5f, x, &y);
  EXPECT_FLOAT_EQ(y(0, 0), 2.0f);
  Matrix row(1, 2);
  row(0, 0) = 10.0f;
  row(0, 1) = 20.0f;
  AddRowVectorInPlace(&y, row);
  EXPECT_FLOAT_EQ(y(1, 1), 22.0f);
}

TEST(BlasTest, ColAndRowSums) {
  Matrix m(2, 3);
  for (size_t i = 0; i < 6; ++i) m.data()[i] = static_cast<float>(i);
  Matrix cs = ColSums(m);
  EXPECT_FLOAT_EQ(cs(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(cs(0, 2), 7.0f);
  Matrix rs = RowSums(m);
  EXPECT_FLOAT_EQ(rs(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(rs(1, 0), 12.0f);
}

TEST(BlasTest, DotAndSquaredL2) {
  std::vector<float> a = {1, 2, 3, 4, 5};
  std::vector<float> b = {5, 4, 3, 2, 1};
  EXPECT_FLOAT_EQ(Dot(a.data(), b.data(), 5), 35.0f);
  EXPECT_FLOAT_EQ(SquaredL2(a.data(), b.data(), 5), 16 + 4 + 0 + 4 + 16);
}

// ------------------------------------------------------- kernel engine ---

// Pins the dispatched micro-kernel for a scope; restores the prior one.
struct KernelGuard {
  explicit KernelGuard(const char* name) : prev(ActiveKernel().name) {
    EXPECT_TRUE(SetActiveKernel(name));
  }
  ~KernelGuard() { SetActiveKernel(prev); }
  std::string prev;
};

void ExpectBitIdentical(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_TRUE(a.SameShape(b)) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what << ": outputs are not bit-identical";
}

// Post-ReLU-like inputs: the saxpy/blocked kernels take their zero-skip
// branches, the packed kernels do not — outputs must still match bitwise.
Matrix ReluSparse(Matrix m) {
  for (size_t i = 0; i < m.size(); ++i) {
    if (m.data()[i] < 0.3f) m.data()[i] = 0.0f;
  }
  return m;
}

TEST(KernelDispatchTest, ScalarAlwaysPresentAndOverridable) {
  const std::vector<KernelInfo>& kernels = AvailableKernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_STREQ(kernels.front().name, "scalar");
  EXPECT_FALSE(SetActiveKernel("no-such-isa"));
  for (const KernelInfo& k : kernels) {
    EXPECT_TRUE(SetActiveKernel(k.name)) << k.name;
    EXPECT_STREQ(ActiveKernel().name, k.name);
  }
  SetActiveKernel("scalar");
}

// The acceptance contract: every GemmNN path — saxpy, blocked, packed under
// every compiled-in ISA kernel, the parallel row-sharded path, and the
// prepacked (cache-fed) path — produces bit-identical output.
TEST(KernelDispatchTest, AllPathsBitIdenticalToPortablePacked) {
  struct Shape {
    size_t m, k, n;
  };
  // Odd shapes exercise the 4-row tail and the panel zero-padding.
  const Shape shapes[] = {{17, 19, 23}, {32, 31, 16}, {64, 40, 48}, {5, 7, 90}};
  for (const Shape& s : shapes) {
    for (bool sparse : {false, true}) {
      util::Rng rng(s.m * 7919 + s.k * 131 + s.n + (sparse ? 1 : 0));
      Matrix a = Matrix::Gaussian(s.m, s.k, &rng);
      if (sparse) a = ReluSparse(std::move(a));
      Matrix b = Matrix::Gaussian(s.k, s.n, &rng);

      Matrix ref(s.m, s.n);
      {
        KernelGuard guard("scalar");
        GemmNNWithKernel(a, b, 1.0f, &ref, GemmKernel::kPacked);
      }

      for (GemmKernel path : {GemmKernel::kSaxpy, GemmKernel::kBlocked,
                              GemmKernel::kPacked, GemmKernel::kPackedParallel,
                              GemmKernel::kAuto}) {
        Matrix out(s.m, s.n);
        KernelGuard guard("scalar");
        GemmNNWithKernel(a, b, 1.0f, &out, path);
        ExpectBitIdentical(ref, out, "scalar path");
      }

      for (const KernelInfo& kern : AvailableKernels()) {
        KernelGuard guard(kern.name);
        Matrix packed_out(s.m, s.n);
        GemmNNWithKernel(a, b, 1.0f, &packed_out, GemmKernel::kPacked);
        ExpectBitIdentical(ref, packed_out, kern.name);

        Matrix parallel_out(s.m, s.n);
        GemmNNWithKernel(a, b, 1.0f, &parallel_out,
                         GemmKernel::kPackedParallel);
        ExpectBitIdentical(ref, parallel_out, kern.name);

        PackCache cache;
        Matrix prepacked_out(s.m, s.n);
        GemmNNPrepacked(a, *cache.Get(b), 1.0f, &prepacked_out);
        ExpectBitIdentical(ref, prepacked_out, kern.name);
      }
    }
  }
}

TEST(KernelDispatchTest, AlphaFlowsThroughEveryKernel) {
  util::Rng rng(42);
  Matrix a = Matrix::Gaussian(20, 9, &rng);
  Matrix b = Matrix::Gaussian(9, 17, &rng);
  Matrix ref(20, 17);
  {
    KernelGuard guard("scalar");
    GemmNNWithKernel(a, b, -1.75f, &ref, GemmKernel::kPacked);
  }
  for (const KernelInfo& kern : AvailableKernels()) {
    KernelGuard guard(kern.name);
    Matrix out(20, 17);
    GemmNNWithKernel(a, b, -1.75f, &out, GemmKernel::kPacked);
    ExpectBitIdentical(ref, out, kern.name);
  }
}

TEST(PackCacheTest, BuildsOncePerGenerationAndInvalidates) {
  util::Rng rng(3);
  Matrix b = Matrix::Gaussian(24, 33, &rng);
  PackStatsSnapshot before = PackStats();
  PackCache cache;
  std::shared_ptr<const PackedWeights> p1 = cache.Get(b);
  std::shared_ptr<const PackedWeights> p2 = cache.Get(b);
  EXPECT_EQ(p1.get(), p2.get());  // Served from the cached snapshot.
  PackStatsSnapshot mid = PackStats();
  EXPECT_EQ(mid.builds - before.builds, 1u);
  EXPECT_EQ(mid.hits - before.hits, 1u);

  uint64_t gen = cache.generation();
  cache.Invalidate();
  EXPECT_GT(cache.generation(), gen);
  std::shared_ptr<const PackedWeights> p3 = cache.Get(b);
  EXPECT_NE(p1.get(), p3.get());  // Rebuilt after invalidation.
  EXPECT_EQ(PackStats().builds - before.builds, 2u);

  // Snapshots are immutable: the pre-invalidation pack is still intact.
  EXPECT_EQ(p1->k, b.rows());
  EXPECT_EQ(p1->n, b.cols());
  EXPECT_EQ(p1->data, p3->data);
}

TEST(PackCacheTest, PackedLayoutZeroPadsPartialPanels) {
  util::Rng rng(5);
  Matrix b = Matrix::Gaussian(3, 18, &rng);  // 18 cols -> 16 + 2-wide panel.
  PackedWeights pw;
  PackB(b, &pw);
  ASSERT_EQ(pw.num_panels, 2u);
  for (size_t p = 0; p < 3; ++p) {
    const float* panel1 = pw.panel(1) + p * kPanelWidth;
    EXPECT_EQ(panel1[0], b(p, 16));
    EXPECT_EQ(panel1[1], b(p, 17));
    for (size_t j = 2; j < kPanelWidth; ++j) EXPECT_EQ(panel1[j], 0.0f);
  }
}

TEST(PackCacheTest, DisableSwitchBypassesCaching) {
  util::Rng rng(4);
  Matrix b = Matrix::Gaussian(8, 8, &rng);
  PackCache cache;
  SetPackCacheEnabled(false);
  PackStatsSnapshot before = PackStats();
  cache.Get(b);
  cache.Get(b);
  EXPECT_EQ(PackStats().builds - before.builds, 2u);  // No reuse.
  SetPackCacheEnabled(true);
  cache.Get(b);
  cache.Get(b);
  EXPECT_EQ(PackStats().builds - before.builds, 3u);  // Cached again.
}

TEST(PackScratchTest, ArenaShrinksWhenDemandDrops) {
  PackScratch arena;
  const size_t big = 1 << 20;
  arena.Acquire(big);
  EXPECT_GE(arena.capacity(), big);
  // A sustained period of small demand re-fits the arena: the one-off giant
  // GEMM no longer pins a megabyte per thread (the old thread_local vector
  // grew monotonically and never shrank).
  for (size_t i = 0; i < 2 * PackScratch::kShrinkPeriod; ++i) {
    arena.Acquire(256);
  }
  EXPECT_LT(arena.capacity(), big / 2);
  EXPECT_GE(arena.capacity(), 256u);
}

TEST(PackScratchTest, GemmScratchPathShrinksToo) {
  util::Rng rng(6);
  // One 16 x 512 * 512 x 512 GEMM inflates the calling thread's arena...
  Matrix big_a = Matrix::Gaussian(16, 512, &rng);
  Matrix big_b = Matrix::Gaussian(512, 512, &rng);
  Matrix big_out(16, 512);
  GemmNNWithKernel(big_a, big_b, 1.0f, &big_out, GemmKernel::kPacked);
  EXPECT_GE(PackScratch::ThreadLocal().capacity(), size_t{512} * 512);
  // ...and a steady small workload deflates it again.
  Matrix a = Matrix::Gaussian(16, 8, &rng);
  Matrix b = Matrix::Gaussian(8, 8, &rng);
  for (size_t i = 0; i < 2 * PackScratch::kShrinkPeriod; ++i) {
    Matrix out(16, 8);
    GemmNNWithKernel(a, b, 1.0f, &out, GemmKernel::kPacked);
  }
  EXPECT_LT(PackScratch::ThreadLocal().capacity(), size_t{512} * 512);
}

}  // namespace
}  // namespace selnet::tensor
