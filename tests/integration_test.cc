#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "core/selnet_partitioned.h"
#include "eval/monotonicity.h"
#include "eval/suite.h"

namespace selnet::eval {
namespace {

// End-to-end: the bench harness pipeline at smoke scale.
class SuiteIntegration : public ::testing::Test {
 protected:
  static util::ScaleConfig SmokeScale() {
    util::ScaleConfig cfg;
    cfg.scale = util::Scale::kSmoke;
    cfg.n = 1200;
    cfg.dim = 10;
    cfg.num_queries = 40;
    cfg.w = 6;
    cfg.epochs = 6;
    cfg.control_points = 8;
    cfg.partitions = 2;
    return cfg;
  }
};

TEST_F(SuiteIntegration, PaperSettingsEnumeratesFourRows) {
  auto settings = PaperSettings();
  ASSERT_EQ(settings.size(), 4u);
  EXPECT_STREQ(settings[0].name, "fasttext-cos");
  EXPECT_STREQ(settings[1].name, "fasttext-l2");
  EXPECT_STREQ(settings[2].name, "face-cos");
  EXPECT_STREQ(settings[3].name, "YouTube-cos");
  EXPECT_EQ(SettingByName("face-cos").corpus, data::Corpus::kFaceLike);
}

TEST_F(SuiteIntegration, LshOnlySupportsCosine) {
  EXPECT_TRUE(ModelSupports(ModelKind::kLsh, data::Metric::kCosine));
  EXPECT_FALSE(ModelSupports(ModelKind::kLsh, data::Metric::kEuclidean));
  EXPECT_TRUE(ModelSupports(ModelKind::kKde, data::Metric::kEuclidean));
}

TEST_F(SuiteIntegration, PaperModelsCoverAllTableRows) {
  auto models = PaperModels();
  EXPECT_EQ(models.size(), 10u);
  EXPECT_EQ(models.front(), ModelKind::kLsh);
  EXPECT_EQ(models.back(), ModelKind::kSelNet);
}

TEST_F(SuiteIntegration, EndToEndTrainScoreAndConsistency) {
  PreparedData data = PrepareData(SettingByName("fasttext-l2"), SmokeScale());
  EXPECT_EQ(data.db.size(), 1200u);
  EXPECT_FALSE(data.workload.train.empty());

  // SelNet-ct end to end.
  auto selnet = MakeModel(ModelKind::kSelNetCt, data);
  ModelScores scores = TrainAndScore(selnet.get(), data);
  EXPECT_TRUE(scores.consistent);
  EXPECT_GT(scores.test.mse, 0.0);
  EXPECT_TRUE(std::isfinite(scores.test.mse));
  EXPECT_TRUE(std::isfinite(scores.test.mae));
  EXPECT_GT(scores.estimate_ms, 0.0);

  double mono = EmpiricalMonotonicity(selnet.get(), data.workload.queries, 10,
                                      data.workload.tmax, 24, 3);
  EXPECT_DOUBLE_EQ(mono, 100.0);

  // A non-consistent baseline trains and scores through the same path.
  auto gbdt = MakeModel(ModelKind::kLightGbm, data);
  ModelScores gb_scores = TrainAndScore(gbdt.get(), data);
  EXPECT_FALSE(gb_scores.consistent);
  EXPECT_TRUE(std::isfinite(gb_scores.test.mse));
}

TEST_F(SuiteIntegration, BetaWorkloadPath) {
  PreparedData data =
      PrepareData(SettingByName("fasttext-cos"), SmokeScale(), true);
  EXPECT_FALSE(data.workload.train.empty());
  auto kde = MakeModel(ModelKind::kKde, data);
  ModelScores scores = TrainAndScore(kde.get(), data);
  EXPECT_TRUE(std::isfinite(scores.test.mape));
}

TEST_F(SuiteIntegration, ModelOptionsOverrideHyperparameters) {
  PreparedData data = PrepareData(SettingByName("fasttext-l2"), SmokeScale());
  ModelOptions opts;
  opts.partitions = 2;
  opts.partition_method = idx::PartitionMethod::kKMeans;
  auto model = MakeModel(ModelKind::kSelNet, data, opts);
  EXPECT_EQ(model->Name(), "SelNet");
  TrainContext ctx;
  ctx.db = &data.db;
  ctx.workload = &data.workload;
  ctx.epochs = 4;
  model->Fit(ctx);
  auto* partitioned = dynamic_cast<core::SelNetPartitioned*>(model.get());
  ASSERT_NE(partitioned, nullptr);
  EXPECT_LE(partitioned->num_partitions(), 2u);
}

}  // namespace
}  // namespace selnet::eval
