#include "serve/frontend.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/selnet_ct.h"
#include "data/synthetic.h"
#include "serve/admission.h"
#include "serve/update_pipeline.h"
#include "serve/wire.h"
#include "util/backoff.h"
#include "util/net.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace selnet::serve {
namespace {

using tensor::Matrix;

// ------------------------------------------------------------- wire codec ---

TEST(WireTest, RequestRoundTripsBitIdentically) {
  EstimateRequest req;
  req.model = "route-a";
  req.tag = 77;
  util::Rng rng(3);
  for (int i = 0; i < 16; ++i) req.x.push_back(float(rng.Uniform(-3.0, 3.0)));
  for (int i = 0; i < 5; ++i) req.thresholds.push_back(float(rng.Uniform()));

  EstimateRequest parsed;
  ASSERT_TRUE(ParseRequestLine(SerializeRequest(req), &parsed).ok());
  EXPECT_EQ(parsed.model, req.model);
  EXPECT_EQ(parsed.tag, req.tag);
  ASSERT_EQ(parsed.x.size(), req.x.size());
  for (size_t i = 0; i < req.x.size(); ++i) {
    EXPECT_EQ(parsed.x[i], req.x[i]) << "x[" << i << "]";  // Bit-exact.
  }
  ASSERT_EQ(parsed.thresholds.size(), req.thresholds.size());
  for (size_t i = 0; i < req.thresholds.size(); ++i) {
    EXPECT_EQ(parsed.thresholds[i], req.thresholds[i]);
  }
}

TEST(WireTest, ResponseRoundTripsBitIdentically) {
  EstimateResponse resp;
  resp.model = "m";
  resp.version = 9;
  resp.cache_hits = 2;
  resp.fast_path = true;
  resp.tag = 5;
  resp.estimates = {1.5f, 3.14159274f, 1e-30f, 123456.789f};

  EstimateResponse parsed;
  ASSERT_TRUE(ParseResponseLine(SerializeResponse(resp), &parsed).ok());
  EXPECT_EQ(parsed.model, resp.model);
  EXPECT_EQ(parsed.version, resp.version);
  EXPECT_EQ(parsed.cache_hits, resp.cache_hits);
  EXPECT_EQ(parsed.fast_path, resp.fast_path);
  EXPECT_EQ(parsed.tag, resp.tag);
  ASSERT_EQ(parsed.estimates.size(), resp.estimates.size());
  for (size_t i = 0; i < resp.estimates.size(); ++i) {
    EXPECT_EQ(parsed.estimates[i], resp.estimates[i]);
  }
}

TEST(WireTest, MalformedLinesAreRejectedWithoutCrashing) {
  EstimateRequest req;
  const char* bad[] = {
      "",
      "not json",
      "{",
      "{}",
      "[1,2,3]",
      "{\"x\":[1,2]}",                          // Missing thresholds.
      "{\"thresholds\":[0.5]}",                 // Missing x.
      "{\"x\":[],\"thresholds\":[0.5]}",        // Empty x.
      "{\"x\":[1],\"thresholds\":[]}",          // Empty thresholds.
      "{\"x\":[1],\"thresholds\":[0.5]",        // Unterminated object.
      "{\"x\":[1],\"thresholds\":[0.5]} junk",  // Trailing bytes.
      "{\"x\":[1],\"thresholds\":[\"a\"]}",     // Wrong element type.
      "{\"x\":[1],\"thresholds\":[0.5],\"bogus\":1}",  // Unknown field.
      "{\"x\":[1],\"thresholds\":[0.5],\"tag\":-3}",   // Negative tag.
  };
  for (const char* line : bad) {
    EXPECT_FALSE(ParseRequestLine(line, &req).ok()) << line;
  }
}

TEST(WireTest, BestEffortTagRecoveryFromMalformedLines) {
  EXPECT_EQ(ExtractTagBestEffort("{\"x\":[1],\"tag\": 42, junk"), 42u);
  EXPECT_EQ(ExtractTagBestEffort("{\"tag\":7}"), 7u);
  EXPECT_EQ(ExtractTagBestEffort("no tag here"), 0u);
  EXPECT_EQ(ExtractTagBestEffort("{\"tag\":\"string\"}"), 0u);
  EXPECT_EQ(ExtractTagBestEffort(""), 0u);
}

TEST(WireTest, ErrorReplyCarriesMessageAndTag) {
  std::string line = SerializeError("no route named 'x'", 42);
  EstimateResponse resp;
  util::Status st = ParseResponseLine(line, &resp);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("no route named"), std::string::npos);
}

// ------------------------------------------------------------ net helpers ---

// Cheap deterministic servable (no training): estimate = bias + sum(x) + t.
class AffineEstimator : public eval::Estimator {
 public:
  explicit AffineEstimator(float bias) : bias_(bias) {}
  std::string Name() const override { return "Affine"; }
  bool IsConsistent() const override { return true; }
  void Fit(const eval::TrainContext&) override {}
  Matrix Predict(const Matrix& x, const Matrix& t) override {
    Matrix y(x.rows(), 1);
    for (size_t i = 0; i < x.rows(); ++i) {
      float sum = bias_;
      for (size_t j = 0; j < x.cols(); ++j) sum += x(i, j);
      y(i, 0) = sum + t(i, 0);
    }
    return y;
  }

 private:
  float bias_;
};

ServerConfig CheapServerConfig(size_t dim = 4) {
  ServerConfig cfg;
  cfg.dim = dim;
  cfg.enable_cache = false;
  cfg.scheduler.max_batch = 16;
  cfg.scheduler.max_delay_ms = 0.2;
  return cfg;
}

// -------------------------------------------------- frontend happy + fail ---

class FrontendFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<SelNetServer>(CheapServerConfig());
    server_->Publish(std::make_shared<AffineEstimator>(10.0f));
    frontend_ = std::make_unique<NetFrontend>(FrontendConfig{}, server_.get());
    ASSERT_TRUE(frontend_->status().ok())
        << frontend_->status().ToString();
    ASSERT_TRUE(client_.Connect("127.0.0.1", frontend_->port()).ok());
  }

  void TearDown() override {
    client_.Close();
    frontend_.reset();  // Frontend drains before the server dies.
    server_.reset();
  }

  std::unique_ptr<SelNetServer> server_;
  std::unique_ptr<NetFrontend> frontend_;
  NetClient client_;
};

TEST_F(FrontendFixture, RoundTripMatchesInProcessSubmitBitIdentically) {
  util::Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    EstimateRequest req;
    for (int j = 0; j < 4; ++j) req.x.push_back(float(rng.Uniform()));
    for (int j = 0; j <= i % 3; ++j) {
      req.thresholds.push_back(float(rng.Uniform()));
    }
    req.tag = uint64_t(i + 1);

    util::Result<EstimateResponse> wire = client_.Roundtrip(req);
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    EstimateResponse direct = server_->Submit(req).get();
    ASSERT_EQ(wire.ValueOrDie().estimates.size(), direct.estimates.size());
    for (size_t k = 0; k < direct.estimates.size(); ++k) {
      EXPECT_EQ(wire.ValueOrDie().estimates[k], direct.estimates[k])
          << "request " << i << " threshold " << k;
    }
    EXPECT_EQ(wire.ValueOrDie().tag, req.tag);
    EXPECT_EQ(wire.ValueOrDie().model, direct.model);
  }
  FrontendStats stats = frontend_->Stats();
  EXPECT_EQ(stats.requests, 20u);
  EXPECT_EQ(stats.responses, 20u);
  EXPECT_EQ(stats.parse_errors, 0u);
}

TEST_F(FrontendFixture, MalformedJsonGetsErrorReplyAndConnectionSurvives) {
  ASSERT_TRUE(client_.SendRaw("this is not json\n").ok());
  util::Result<std::string> reply = client_.ReadLine();
  ASSERT_TRUE(reply.ok());
  EXPECT_NE(reply.ValueOrDie().find("\"error\""), std::string::npos);

  // A malformed line with a recoverable tag gets the tag echoed, so a
  // pipelining client can still correlate the failure.
  ASSERT_TRUE(client_
                  .SendRaw("{\"x\":[1],\"thresholds\":[0.5],\"tag\":9,"
                           "\"bogus\":1}\n")
                  .ok());
  util::Result<std::string> tagged = client_.ReadLine();
  ASSERT_TRUE(tagged.ok());
  EXPECT_NE(tagged.ValueOrDie().find("\"error\""), std::string::npos);
  EXPECT_NE(tagged.ValueOrDie().find("\"tag\":9"), std::string::npos);

  // Same connection still serves a valid request afterwards.
  EstimateRequest req;
  req.x = {0.0f, 0.0f, 0.0f, 0.0f};
  req.thresholds = {1.0f};
  util::Result<EstimateResponse> ok = client_.Roundtrip(req);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_FLOAT_EQ(ok.ValueOrDie().estimates[0], 11.0f);
  EXPECT_GE(frontend_->Stats().parse_errors, 1u);
}

TEST_F(FrontendFixture, UnknownRouteGetsErrorReplyAndConnectionSurvives) {
  EstimateRequest req;
  req.model = "never-published";
  req.x = {0.0f, 0.0f, 0.0f, 0.0f};
  req.thresholds = {1.0f};
  util::Result<EstimateResponse> bad = client_.Roundtrip(req);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("never-published"), std::string::npos);

  req.model.clear();
  util::Result<EstimateResponse> ok = client_.Roundtrip(req);
  ASSERT_TRUE(ok.ok());
  EXPECT_GE(frontend_->Stats().request_errors, 1u);
}

TEST_F(FrontendFixture, WrongDimensionalityGetsErrorReply) {
  EstimateRequest req;
  req.x = {1.0f, 2.0f};  // Server dim is 4.
  req.thresholds = {0.5f};
  util::Result<EstimateResponse> bad = client_.Roundtrip(req);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("dim"), std::string::npos);
}

TEST(FrontendLimitsTest, OversizedPayloadIsRejectedThenClosed) {
  SelNetServer server(CheapServerConfig());
  server.Publish(std::make_shared<AffineEstimator>(0.0f));
  FrontendConfig fcfg;
  fcfg.max_line_bytes = 4096;
  NetFrontend frontend(fcfg, &server);
  ASSERT_TRUE(frontend.status().ok());
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", frontend.port()).ok());

  // A single line far past the cap (never sending its newline would also
  // trip the no-newline guard; this exercises the framed-line path).
  std::string huge = "{\"x\":[";
  while (huge.size() < 3 * fcfg.max_line_bytes) huge += "0.125,";
  huge += "0.125],\"thresholds\":[0.5]}\n";
  ASSERT_TRUE(client.SendRaw(huge).ok());
  util::Result<std::string> reply = client.ReadLine();
  ASSERT_TRUE(reply.ok());
  EXPECT_NE(reply.ValueOrDie().find("exceeds"), std::string::npos);
  // The server closes after delivering the error.
  util::Result<std::string> eof = client.ReadLine();
  EXPECT_FALSE(eof.ok());
  EXPECT_GE(frontend.Stats().oversized, 1u);

  // The frontend itself is fine: a fresh connection serves.
  NetClient again;
  ASSERT_TRUE(again.Connect("127.0.0.1", frontend.port()).ok());
  EstimateRequest req;
  req.x = {0.0f, 0.0f, 0.0f, 0.0f};
  req.thresholds = {0.5f};
  EXPECT_TRUE(again.Roundtrip(req).ok());
}

TEST(FrontendLimitsTest, ClientDisconnectMidResponseIsHarmless) {
  SelNetServer server(CheapServerConfig());
  server.Publish(std::make_shared<AffineEstimator>(0.0f));
  NetFrontend frontend(FrontendConfig{}, &server);
  ASSERT_TRUE(frontend.status().ok());

  // Fire a burst of requests and vanish before reading any response.
  {
    NetClient rude;
    ASSERT_TRUE(rude.Connect("127.0.0.1", frontend.port()).ok());
    EstimateRequest req;
    req.x = {0.1f, 0.1f, 0.1f, 0.1f};
    req.thresholds = {0.5f};
    std::string burst;
    for (int i = 0; i < 50; ++i) burst += SerializeRequest(req) + "\n";
    ASSERT_TRUE(rude.SendRaw(burst).ok());
    rude.Close();  // Mid-response: completions land on a dead connection.
  }
  server.Drain();  // All submitted work completes against the closed conn.

  // The frontend keeps serving new clients.
  NetClient polite;
  ASSERT_TRUE(polite.Connect("127.0.0.1", frontend.port()).ok());
  EstimateRequest req;
  req.x = {0.0f, 0.0f, 0.0f, 0.0f};
  req.thresholds = {1.0f};
  util::Result<EstimateResponse> ok = polite.Roundtrip(req);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_FLOAT_EQ(ok.ValueOrDie().estimates[0], 1.0f);
}

TEST(FrontendLimitsTest, GracefulDrainAnswersAcceptedRequests) {
  SelNetServer server(CheapServerConfig());
  server.Publish(std::make_shared<AffineEstimator>(3.0f));
  auto frontend = std::make_unique<NetFrontend>(FrontendConfig{}, &server);
  ASSERT_TRUE(frontend->status().ok());
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", frontend->port()).ok());

  EstimateRequest req;
  req.x = {0.0f, 0.0f, 0.0f, 0.0f};
  req.thresholds = {1.0f};
  std::string burst;
  for (int i = 0; i < 20; ++i) burst += SerializeRequest(req) + "\n";
  ASSERT_TRUE(client.SendRaw(burst).ok());

  // Stop concurrently with the in-flight burst: every accepted request must
  // still be answered before the socket closes.
  std::thread stopper([&] { frontend->Stop(); });
  size_t answered = 0;
  for (;;) {
    util::Result<std::string> line = client.ReadLine();
    if (!line.ok()) break;  // Clean close after the drain.
    EstimateResponse resp;
    ASSERT_TRUE(ParseResponseLine(line.ValueOrDie(), &resp).ok());
    EXPECT_FLOAT_EQ(resp.estimates[0], 4.0f);
    ++answered;
  }
  stopper.join();
  // The loop may not have read all 20 lines off the socket before Stop; the
  // ones it DID submit must all have been answered and flushed.
  FrontendStats stats = frontend->Stats();
  EXPECT_EQ(answered, stats.requests);
  EXPECT_EQ(stats.responses, stats.requests);
}

TEST(FrontendLimitsTest, BackpressureCapsPerConnectionInflight) {
  SelNetServer server(CheapServerConfig());
  server.Publish(std::make_shared<AffineEstimator>(0.0f));
  FrontendConfig fcfg;
  fcfg.max_inflight_per_conn = 4;
  NetFrontend frontend(fcfg, &server);
  ASSERT_TRUE(frontend.status().ok());
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", frontend.port()).ok());

  EstimateRequest req;
  req.x = {0.1f, 0.1f, 0.1f, 0.1f};
  req.thresholds = {0.5f};
  std::string burst;
  const int kBurst = 64;
  for (int i = 0; i < kBurst; ++i) burst += SerializeRequest(req) + "\n";
  ASSERT_TRUE(client.SendRaw(burst).ok());
  // Every request is eventually answered despite the cap throttling reads.
  for (int i = 0; i < kBurst; ++i) {
    util::Result<std::string> line = client.ReadLine();
    ASSERT_TRUE(line.ok()) << "response " << i;
  }
  EXPECT_GE(frontend.Stats().backpressure_stalls, 1u);
}

// ----------------------------------------------------- admin plane (wire) ---

TEST(AdminPlaneTest, StatsReplyCarriesPerStagePercentiles) {
  ServerConfig scfg = CheapServerConfig();
  scfg.trace_sample_every = 1;  // Trace every request...
  scfg.slow_trace_ms = 0.0;     // ...and retain every span in the slow ring.
  SelNetServer server(scfg);
  server.Publish(std::make_shared<AffineEstimator>(1.0f));
  NetFrontend frontend(FrontendConfig{}, &server);
  ASSERT_TRUE(frontend.status().ok());
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", frontend.port()).ok());

  EstimateRequest req;
  req.x = {0.0f, 0.0f, 0.0f, 0.0f};
  req.thresholds = {0.5f};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(client.Roundtrip(req).ok()) << "request " << i;
  }

  util::Result<std::string> reply = client.Admin("stats", 31);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  const std::string& line = reply.ValueOrDie();
  EXPECT_NE(line.find("\"stats\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"tag\":31"), std::string::npos) << line;
  EXPECT_NE(line.find("\"requests\":8"), std::string::npos) << line;
  // Every stage the request actually crossed reports merged percentiles.
  for (const char* stage :
       {"\"decode\"", "\"route\"", "\"queue\"", "\"predict\"", "\"encode\""}) {
    EXPECT_NE(line.find(stage), std::string::npos) << stage << " in " << line;
  }
  EXPECT_NE(line.find("\"p50_ms\""), std::string::npos);
  EXPECT_NE(line.find("\"p99_ms\""), std::string::npos);

  // The decode..predict stages were observed for all 8 traced requests.
  StatsSnapshot snap = frontend.FleetSnapshot();
  ASSERT_EQ(snap.stage_hists.size(), kNumStages);
  EXPECT_EQ(snap.stage_hists[size_t(Stage::kDecode)].count, 8u);
  EXPECT_EQ(snap.stage_hists[size_t(Stage::kPredict)].count, 8u);
  // Encode is recorded AFTER the response is serialized: the 8th response
  // was read back, so at least the first 7 have landed.
  EXPECT_GE(snap.stage_hists[size_t(Stage::kEncode)].count, 7u);
  EXPECT_EQ(snap.traced, 8u);

  // {"cmd":"slow"} dumps the retained spans (threshold 0 keeps them all).
  util::Result<std::string> slow = client.Admin("slow", 7);
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();
  EXPECT_NE(slow.ValueOrDie().find("\"slow\":["), std::string::npos);
  EXPECT_NE(slow.ValueOrDie().find("\"total_ms\""), std::string::npos);
  EXPECT_NE(slow.ValueOrDie().find("\"tag\":7"), std::string::npos);

  EXPECT_GE(frontend.Stats().admin_requests, 2u);
}

TEST(AdminPlaneTest, BadAdminLinesGetErrorRepliesAndConnectionSurvives) {
  SelNetServer server(CheapServerConfig());
  server.Publish(std::make_shared<AffineEstimator>(0.0f));
  NetFrontend frontend(FrontendConfig{}, &server);
  ASSERT_TRUE(frontend.status().ok());
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", frontend.port()).ok());

  // Unknown command.
  util::Result<std::string> unknown = client.Admin("bogus", 3);
  ASSERT_TRUE(unknown.ok());
  EXPECT_NE(unknown.ValueOrDie().find("\"error\""), std::string::npos);
  EXPECT_NE(unknown.ValueOrDie().find("unknown admin cmd"), std::string::npos);
  EXPECT_NE(unknown.ValueOrDie().find("\"tag\":3"), std::string::npos);

  // Malformed admin line (looks like admin, fails strict parse).
  ASSERT_TRUE(
      client.SendRaw("{\"cmd\":\"stats\",\"junk\":1,\"tag\":5}\n").ok());
  util::Result<std::string> mal = client.ReadLine();
  ASSERT_TRUE(mal.ok());
  EXPECT_NE(mal.ValueOrDie().find("\"error\""), std::string::npos);
  EXPECT_NE(mal.ValueOrDie().find("\"tag\":5"), std::string::npos);

  // Same connection still serves estimates and admin afterwards.
  EstimateRequest req;
  req.x = {0.0f, 0.0f, 0.0f, 0.0f};
  req.thresholds = {1.0f};
  ASSERT_TRUE(client.Roundtrip(req).ok());
  util::Result<std::string> stats = client.Admin("stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.ValueOrDie().find("\"stats\""), std::string::npos);
}

TEST(AdminPlaneTest, FleetStatsMergeHistogramsAcrossShards) {
  ShardedConfig scfg;
  scfg.server = CheapServerConfig(4);
  scfg.server.trace_sample_every = 2;  // Sampled, not exhaustive.
  scfg.num_shards = 2;
  scfg.threads_per_shard = 1;
  ShardedRegistry registry(scfg);
  registry.Publish("a", std::make_shared<AffineEstimator>(0.0f));
  std::string other;
  for (int i = 0; i < 64 && other.empty(); ++i) {
    std::string cand = "alt" + std::to_string(i);
    if (registry.ShardOf(cand) != registry.ShardOf("a")) other = cand;
  }
  ASSERT_FALSE(other.empty());
  registry.Publish(other, std::make_shared<AffineEstimator>(5.0f));

  NetFrontend frontend(FrontendConfig{}, &registry);
  ASSERT_TRUE(frontend.status().ok());
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", frontend.port()).ok());

  EstimateRequest req;
  req.x = {0.1f, 0.1f, 0.1f, 0.1f};
  req.thresholds = {0.5f};
  for (int i = 0; i < 10; ++i) {
    req.model = i % 2 == 0 ? "a" : other;
    ASSERT_TRUE(client.Roundtrip(req).ok()) << "request " << i;
  }
  registry.Drain();

  // The merged fleet snapshot pools both shards' latency histograms: the
  // bucket counts sum to the fleet-wide request count — not a worst-shard
  // summary.
  StatsSnapshot fleet = frontend.FleetSnapshot();
  EXPECT_EQ(fleet.requests, 10u);
  EXPECT_EQ(fleet.latency_hist.count, 10u);
  StatsSnapshot a = registry.shard(0).stats().Snapshot();
  StatsSnapshot b = registry.shard(1).stats().Snapshot();
  EXPECT_EQ(a.latency_hist.count + b.latency_hist.count, 10u);
  EXPECT_GT(a.latency_hist.count, 0u);
  EXPECT_GT(b.latency_hist.count, 0u);

  util::Result<std::string> reply = client.Admin("stats");
  ASSERT_TRUE(reply.ok());
  EXPECT_NE(reply.ValueOrDie().find("\"requests\":10"), std::string::npos)
      << reply.ValueOrDie();
  EXPECT_NE(reply.ValueOrDie().find("\"stages\""), std::string::npos);
}

// ------------------------------- sharded serving over the wire + updates ---

class NetShardFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticSpec spec;
    spec.n = 400;
    spec.dim = 4;
    db_ = std::make_unique<data::Database>(data::GenerateMixture(spec),
                                           data::Metric::kEuclidean);
    data::WorkloadSpec wspec;
    wspec.num_queries = 20;
    wspec.w = 5;
    wspec.max_sel_fraction = 0.2;
    wl_ = data::GenerateWorkload(*db_, wspec);
    ctx_.db = db_.get();
    ctx_.workload = &wl_;
    ctx_.epochs = 3;
    cfg_.input_dim = 4;
    cfg_.tmax = wl_.tmax;
    cfg_.num_control = 5;
    cfg_.latent_dim = 2;
    cfg_.ae_hidden = 12;
    cfg_.tau_hidden = 12;
    cfg_.p_hidden = 16;
    cfg_.embed_h = 4;
    cfg_.ae_pretrain_epochs = 1;
    model_ = std::make_shared<core::SelNetCt>(cfg_);
    model_->Fit(ctx_);

    ShardedConfig scfg;
    scfg.server = CheapServerConfig(4);
    scfg.num_shards = 2;
    scfg.threads_per_shard = 1;
    registry_ = std::make_unique<ShardedRegistry>(scfg);
    frontend_ =
        std::make_unique<NetFrontend>(FrontendConfig{}, registry_.get());
    ASSERT_TRUE(frontend_->status().ok());
  }

  void TearDown() override {
    frontend_.reset();
    registry_.reset();
  }

  /// A route name owned by a different shard than `other`.
  std::string RouteOnOtherShard(const std::string& other) {
    for (int i = 0; i < 64; ++i) {
      std::string cand = "alt" + std::to_string(i);
      if (registry_->ShardOf(cand) != registry_->ShardOf(other)) return cand;
    }
    return "";
  }

  std::unique_ptr<data::Database> db_;
  data::Workload wl_;
  eval::TrainContext ctx_;
  core::SelNetConfig cfg_;
  std::shared_ptr<core::SelNetCt> model_;
  std::unique_ptr<ShardedRegistry> registry_;
  std::unique_ptr<NetFrontend> frontend_;
};

TEST_F(NetShardFixture, WireMatchesInProcessAcrossShards) {
  registry_->Publish("a", model_);
  std::string other = RouteOnOtherShard("a");
  ASSERT_FALSE(other.empty());
  registry_->Publish(other, model_);

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", frontend_->port()).ok());
  std::vector<float> ts;
  for (int i = 1; i <= 5; ++i) ts.push_back(wl_.tmax * float(i) / 5.0f);
  for (const std::string& route : {std::string("a"), other}) {
    for (size_t q = 0; q < 5; ++q) {
      EstimateRequest req =
          EstimateRequest::Sweep(wl_.queries.row(q), 4, ts, route);
      util::Result<EstimateResponse> wire = client.Roundtrip(req);
      ASSERT_TRUE(wire.ok()) << wire.status().ToString();
      EstimateResponse direct = registry_->Submit(req).get();
      ASSERT_EQ(wire.ValueOrDie().estimates.size(), direct.estimates.size());
      for (size_t k = 0; k < direct.estimates.size(); ++k) {
        EXPECT_EQ(wire.ValueOrDie().estimates[k], direct.estimates[k])
            << route << " q" << q << " t" << k;
      }
    }
  }
}

TEST_F(NetShardFixture, SweepStaysMonotoneAcrossHotSwapOnAnotherShard) {
  registry_->Publish("primary", model_);
  std::string other = RouteOnOtherShard("primary");
  ASSERT_FALSE(other.empty());
  registry_->Publish(other, model_);

  std::vector<float> ts;
  for (int i = 1; i <= 8; ++i) ts.push_back(wl_.tmax * float(i) / 8.0f);

  std::atomic<bool> stop{false};
  std::atomic<size_t> violations{0}, failures{0}, sweeps{0};
  std::thread sweeper([&] {
    NetClient client;
    if (!client.Connect("127.0.0.1", frontend_->port()).ok()) {
      failures.fetch_add(1);
      return;
    }
    util::Rng rng(5);
    while (!stop.load()) {
      size_t q = size_t(rng.UniformInt(0, int64_t(wl_.queries.rows()) - 1));
      util::Result<EstimateResponse> resp = client.Roundtrip(
          EstimateRequest::Sweep(wl_.queries.row(q), 4, ts, "primary"));
      if (!resp.ok()) {
        failures.fetch_add(1);
        continue;
      }
      const auto& est = resp.ValueOrDie().estimates;
      for (size_t i = 1; i < est.size(); ++i) {
        if (est[i] < est[i - 1]) violations.fetch_add(1);
      }
      sweeps.fetch_add(1);
    }
  });

  // Hot-swap storm on BOTH shards: the sweeper's route republishes (its
  // estimates may jump between versions but each sweep stays monotone), and
  // the OTHER shard swaps too — proving a foreign shard's swap cannot
  // corrupt this shard's in-flight sweeps or cache keys.
  for (int swap = 0; swap < 6; ++swap) {
    registry_->Publish(swap % 2 == 0 ? other : "primary",
                       model_->CloneServable());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  util::Backoff poll({/*base_ms=*/1.0, /*cap_ms=*/20.0}, /*seed=*/7);
  while (sweeps.load() < 10) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(poll.NextDelayMs()));
  }
  stop.store(true);
  sweeper.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GE(sweeps.load(), 10u);
}

TEST_F(NetShardFixture, NetworkStormWithLivePipelineFailsNoQuery) {
  // The PR 4 publish storm, extended end to end: wire -> router -> shard ->
  // batched kernel, while the live-update pipeline retrains and republishes
  // the served route. Zero failed queries, zero monotonicity violations.
  const std::string route = "live";
  registry_->Publish(route, model_);
  UpdatePipelineConfig ucfg;
  ucfg.model_name = route;
  ucfg.policy.mae_drift_fraction = 0.0;
  ucfg.policy.max_epochs = 1;
  ucfg.policy.patience = 1;
  LiveUpdatePipeline& pipeline =
      registry_->AttachUpdatePipeline(ucfg, *db_, wl_);

  std::vector<float> ts;
  for (int i = 1; i <= 6; ++i) ts.push_back(wl_.tmax * float(i) / 6.0f);

  std::atomic<bool> stop{false};
  std::atomic<size_t> failures{0}, violations{0}, answered{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      NetClient client;
      if (!client.Connect("127.0.0.1", frontend_->port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      util::Rng rng(600 + c);
      while (!stop.load()) {
        size_t q =
            size_t(rng.UniformInt(0, int64_t(wl_.queries.rows()) - 1));
        // One client sweeps, one sends scalars.
        EstimateRequest req =
            c == 0 ? EstimateRequest::Sweep(wl_.queries.row(q), 4, ts, route)
                   : EstimateRequest::Point(wl_.queries.row(q), 4,
                                            wl_.tmax * float(rng.Uniform()),
                                            route);
        util::Result<EstimateResponse> resp = client.Roundtrip(req);
        if (!resp.ok()) {
          failures.fetch_add(1);
          continue;
        }
        const auto& est = resp.ValueOrDie().estimates;
        for (size_t i = 0; i < est.size(); ++i) {
          if (!std::isfinite(est[i])) failures.fetch_add(1);
          if (i > 0 && est[i] < est[i - 1]) violations.fetch_add(1);
        }
        answered.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    });
  }

  // Feed drift-tripping ops until >= 2 republishes have hot-swapped the
  // served route mid-traffic.
  const uint64_t kWantPublishes = 2;
  util::Stopwatch deadline;
  size_t fed = 0;
  while (pipeline.Snapshot().publishes < kWantPublishes &&
         deadline.ElapsedSeconds() < 60.0) {
    core::UpdateOp op;
    op.is_insert = true;
    const float* hot =
        wl_.queries.row(wl_.valid[fed % wl_.valid.size()].query_id);
    for (int i = 0; i < 40; ++i) op.vectors.emplace_back(hot, hot + 4);
    if (pipeline.Submit(op)) ++fed;
    pipeline.Flush();
  }
  util::Backoff poll({/*base_ms=*/1.0, /*cap_ms=*/20.0}, /*seed=*/7);
  while (answered.load() < 20 && deadline.ElapsedSeconds() < 60.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(poll.NextDelayMs()));
  }
  stop.store(true);
  for (auto& th : clients) th.join();
  registry_->Drain();

  UpdatePipelineState state = pipeline.Snapshot();
  EXPECT_GE(state.publishes, kWantPublishes);
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GE(answered.load(), 20u);
  EXPECT_EQ(frontend_->Stats().request_errors, 0u);
}

// -------------------------------------------------- overload on the wire ---

/// Predict parks until Release(): pins the backend saturated so shed and
/// deadline replies can be observed on the wire deterministically.
class WireBlockingEstimator : public eval::Estimator {
 public:
  std::string Name() const override { return "WireBlocking"; }
  bool IsConsistent() const override { return true; }
  void Fit(const eval::TrainContext&) override {}
  Matrix Predict(const Matrix& x, const Matrix&) override {
    started_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return released_; });
    Matrix y(x.rows(), 1);
    for (size_t i = 0; i < x.rows(); ++i) y(i, 0) = 2.0f;
    return y;
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }
  size_t started() const { return started_.load(std::memory_order_relaxed); }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool released_ = false;
  std::atomic<size_t> started_{0};
};

TEST(FrontendOverloadTest, ShedAtDecodeWritesOneTypedErrorLine) {
  ServerConfig scfg = CheapServerConfig();
  scfg.admission.enabled = true;
  scfg.admission.max_inflight = 1;
  SelNetServer server(scfg);
  auto blocking = std::make_shared<WireBlockingEstimator>();
  server.Publish(blocking);
  NetFrontend frontend(FrontendConfig{}, &server);
  ASSERT_TRUE(frontend.status().ok());

  NetClient occupant, shed;
  ASSERT_TRUE(occupant.Connect("127.0.0.1", frontend.port()).ok());
  ASSERT_TRUE(shed.Connect("127.0.0.1", frontend.port()).ok());

  // The occupant's request takes the only admission ticket and parks inside
  // Predict; its reply cannot arrive until Release().
  EstimateRequest holder;
  holder.x = {1.0f, 2.0f, 3.0f, 4.0f};
  holder.thresholds = {0.5f};
  holder.tag = 1;
  ASSERT_TRUE(occupant.SendRaw(SerializeRequest(holder) + "\n").ok());
  while (blocking->started() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The next decode sheds synchronously on the loop thread: one COMPLETE
  // error line with the machine-readable reason and the client's tag —
  // ReadLine only returns on '\n', so a full line proves no partial write.
  ASSERT_TRUE(
      shed.SendRaw(
              "{\"x\":[1,1,1,1],\"thresholds\":[0.5],\"tag\":9}\n")
          .ok());
  util::Result<std::string> line = shed.ReadLine();
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_NE(line.ValueOrDie().find("\"code\":\"queue_full\""),
            std::string::npos)
      << line.ValueOrDie();
  EXPECT_NE(line.ValueOrDie().find("\"tag\":9"), std::string::npos);
  EstimateResponse parsed;
  util::Status st = ParseResponseLine(line.ValueOrDie(), &parsed);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kUnavailable) << st.ToString();

  // The typed-status mapping also works end to end through Roundtrip.
  util::Result<EstimateResponse> rt = shed.Roundtrip(holder);
  ASSERT_FALSE(rt.ok());
  EXPECT_EQ(rt.status().code(), util::StatusCode::kUnavailable);

  // The occupant was never harmed: its answer arrives after release.
  blocking->Release();
  util::Result<std::string> ok_line = occupant.ReadLine();
  ASSERT_TRUE(ok_line.ok());
  EXPECT_EQ(ok_line.ValueOrDie().find("\"error\""), std::string::npos)
      << ok_line.ValueOrDie();
  occupant.Close();
  shed.Close();
  frontend.Stop();
}

TEST(FrontendOverloadTest, DeadlineExpiredInQueueWritesTypedErrorLine) {
  util::ThreadPool pool(1);  // One worker: queued batches wait their turn.
  ServerConfig scfg = CheapServerConfig();
  scfg.scheduler.pool = &pool;
  SelNetServer server(scfg);
  auto blocking = std::make_shared<WireBlockingEstimator>();
  server.Publish(blocking);
  NetFrontend frontend(FrontendConfig{}, &server);
  ASSERT_TRUE(frontend.status().ok());

  NetClient occupant, doomed;
  ASSERT_TRUE(occupant.Connect("127.0.0.1", frontend.port()).ok());
  ASSERT_TRUE(doomed.Connect("127.0.0.1", frontend.port()).ok());

  ASSERT_TRUE(
      occupant
          .SendRaw("{\"x\":[1,1,1,1],\"thresholds\":[0.5],\"tag\":1}\n")
          .ok());
  while (blocking->started() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // This request's 20 ms budget is anchored at decode; it expires while its
  // batch waits behind the parked one, and the row is dropped AT the batch
  // boundary — the typed reply proves it never reached Predict.
  ASSERT_TRUE(doomed
                  .SendRaw("{\"x\":[2,2,2,2],\"thresholds\":[0.5],"
                           "\"deadline_ms\":20,\"tag\":7}\n")
                  .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  blocking->Release();

  util::Result<std::string> line = doomed.ReadLine();
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_NE(line.ValueOrDie().find("\"code\":\"deadline_exceeded\""),
            std::string::npos)
      << line.ValueOrDie();
  EXPECT_NE(line.ValueOrDie().find("\"tag\":7"), std::string::npos);
  EstimateResponse parsed;
  EXPECT_EQ(ParseResponseLine(line.ValueOrDie(), &parsed).code(),
            util::StatusCode::kDeadlineExceeded);

  util::Result<std::string> ok_line = occupant.ReadLine();
  ASSERT_TRUE(ok_line.ok());
  EXPECT_EQ(ok_line.ValueOrDie().find("\"error\""), std::string::npos);

  // A non-positive budget is already expired at decode: typed shed, no
  // compute, connection survives.
  ASSERT_TRUE(doomed
                  .SendRaw("{\"x\":[2,2,2,2],\"thresholds\":[0.5],"
                           "\"deadline_ms\":0,\"tag\":8}\n")
                  .ok());
  line = doomed.ReadLine();
  ASSERT_TRUE(line.ok());
  EXPECT_NE(line.ValueOrDie().find("\"code\":\"deadline_exceeded\""),
            std::string::npos);
  EXPECT_EQ(server.stats().Snapshot().deadline_rows_predicted, 0u);

  occupant.Close();
  doomed.Close();
  frontend.Stop();
  server.Drain();
}

TEST(FrontendOverloadTest, RecvTimeoutAgainstSilentServerIsTyped) {
  // A listener that accepts (at the kernel level) and never replies.
  util::TcpListener silent;
  ASSERT_TRUE(silent.Listen("127.0.0.1", 0).ok());

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", silent.port()).ok());
  client.set_recv_timeout_ms(50);
  ASSERT_TRUE(client.SendRaw("{\"x\":[1],\"thresholds\":[0.5]}\n").ok());

  auto start = std::chrono::steady_clock::now();
  util::Result<std::string> line = client.ReadLine();
  double waited_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.status().code(), util::StatusCode::kDeadlineExceeded)
      << line.status().ToString();
  EXPECT_GE(waited_ms, 45.0);    // The full budget was honored...
  EXPECT_LT(waited_ms, 5000.0);  // ...and it did not block forever.

  // Timeout is not a connection error: the socket stays usable and a second
  // bounded read times out the same way instead of reporting I/O failure.
  EXPECT_EQ(client.ReadLine().status().code(),
            util::StatusCode::kDeadlineExceeded);
  client.Close();
}

TEST(FrontendOverloadTest, ServerKilledMidRoundtripSurfacesIoError) {
  FrontendConfig fcfg;
  fcfg.drain_timeout_s = 0.05;  // Stop() gives up on the parked response.
  SelNetServer server(CheapServerConfig());
  auto blocking = std::make_shared<WireBlockingEstimator>();
  server.Publish(blocking);
  auto frontend = std::make_unique<NetFrontend>(fcfg, &server);
  ASSERT_TRUE(frontend->status().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", frontend->port()).ok());
  client.set_recv_timeout_ms(5000);  // Upper bound so the test cannot hang.
  ASSERT_TRUE(
      client.SendRaw("{\"x\":[1,1,1,1],\"thresholds\":[0.5],\"tag\":3}\n")
          .ok());
  while (blocking->started() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Kill the server mid-roundtrip: the drain times out, the connection is
  // closed, and the pending read surfaces a distinct I/O error — NOT a
  // recv timeout and NOT a silent hang.
  frontend->Stop();
  util::Result<std::string> line = client.ReadLine();
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.status().code(), util::StatusCode::kIoError)
      << line.status().ToString();

  client.Close();
  blocking->Release();  // Unblock the worker so teardown can drain.
  frontend.reset();
  server.Drain();
}

}  // namespace
}  // namespace selnet::serve
