#include "serve/shard_router.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/selnet_ct.h"
#include "data/synthetic.h"
#include "serve/update_pipeline.h"
#include "util/histogram.h"
#include "util/stopwatch.h"

namespace selnet::serve {
namespace {

using tensor::Matrix;

// A cheap deterministic servable: estimate = bias + sum(x) + t. Lets the
// routing tests exercise the full serving stack without training a network,
// and `bias` tells shards' answers apart.
class AffineEstimator : public eval::Estimator {
 public:
  explicit AffineEstimator(float bias, int sleep_ms = 0)
      : bias_(bias), sleep_ms_(sleep_ms) {}

  std::string Name() const override { return "Affine"; }
  bool IsConsistent() const override { return true; }
  void Fit(const eval::TrainContext&) override {}

  Matrix Predict(const Matrix& x, const Matrix& t) override {
    if (sleep_ms_ > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms_));
    }
    Matrix y(x.rows(), 1);
    for (size_t i = 0; i < x.rows(); ++i) {
      float sum = bias_;
      for (size_t j = 0; j < x.cols(); ++j) sum += x(i, j);
      y(i, 0) = sum + t(i, 0);
    }
    return y;
  }

 private:
  float bias_;
  int sleep_ms_;
};

ShardedConfig MakeConfig(size_t shards, size_t dim = 4) {
  ShardedConfig cfg;
  cfg.server.dim = dim;
  cfg.server.enable_cache = false;
  cfg.server.scheduler.max_batch = 16;
  cfg.server.scheduler.max_delay_ms = 0.2;
  cfg.num_shards = shards;
  cfg.threads_per_shard = 1;
  return cfg;
}

// ------------------------------------------------------------------- ring ---

TEST(HashRingTest, DeterministicAcrossInstances) {
  HashRing a(4, 64);
  HashRing b(4, 64);
  for (int i = 0; i < 200; ++i) {
    std::string route = "model-" + std::to_string(i);
    EXPECT_EQ(a.ShardOf(route), b.ShardOf(route)) << route;
  }
}

TEST(HashRingTest, CoversAllShardsAndBalancesRoughly) {
  const size_t kShards = 4;
  HashRing ring(kShards, 128);
  std::vector<size_t> load(kShards, 0);
  const size_t kRoutes = 2000;
  for (size_t i = 0; i < kRoutes; ++i) {
    ++load[ring.ShardOf("route/" + std::to_string(i))];
  }
  double mean = double(kRoutes) / double(kShards);
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_GT(load[s], 0u) << "shard " << s << " owns nothing";
    // Consistent hashing is not perfectly uniform; 2x mean is a loose bound
    // that still catches a broken ring (everything on one shard).
    EXPECT_LT(double(load[s]), 2.0 * mean) << "shard " << s;
  }
}

TEST(HashRingTest, GrowingRingMovesOnlyAFractionOfRoutes) {
  HashRing four(4, 128);
  HashRing five(5, 128);
  size_t moved = 0;
  const size_t kRoutes = 2000;
  for (size_t i = 0; i < kRoutes; ++i) {
    std::string route = "route/" + std::to_string(i);
    if (four.ShardOf(route) != five.ShardOf(route)) ++moved;
  }
  // Consistent hashing's selling point: adding shard 5 should move ~1/5 of
  // the keyspace, not reshuffle everything (modulo hashing would move ~80%).
  EXPECT_LT(moved, kRoutes / 2);
  EXPECT_GT(moved, 0u);
}

TEST(HashRingTest, SingleShardOwnsEverything) {
  HashRing ring(1, 16);
  EXPECT_EQ(ring.ShardOf("a"), 0u);
  EXPECT_EQ(ring.ShardOf("zz"), 0u);
}

// --------------------------------------------------------------- registry ---

TEST(ShardedRegistryTest, PublishLandsOnOwningShardOnly) {
  ShardedRegistry reg(MakeConfig(3));
  std::vector<std::string> routes;
  for (int i = 0; i < 9; ++i) routes.push_back("m" + std::to_string(i));
  for (size_t i = 0; i < routes.size(); ++i) {
    reg.Publish(routes[i], std::make_shared<AffineEstimator>(float(i)));
  }
  for (const auto& route : routes) {
    size_t owner = reg.ShardOf(route);
    for (size_t s = 0; s < reg.num_shards(); ++s) {
      uint64_t v = reg.shard(s).registry().VersionOf(route);
      if (s == owner) {
        EXPECT_GT(v, 0u) << route << " missing on its owner shard " << s;
      } else {
        EXPECT_EQ(v, 0u) << route << " leaked onto shard " << s;
      }
    }
  }
}

TEST(ShardedRegistryTest, SubmitAnswersMatchDirectModel) {
  ShardedRegistry reg(MakeConfig(3));
  for (int i = 0; i < 6; ++i) {
    reg.Publish("m" + std::to_string(i),
                std::make_shared<AffineEstimator>(float(100 * i)));
  }
  float x[4] = {0.1f, 0.2f, 0.3f, 0.4f};
  for (int i = 0; i < 6; ++i) {
    EstimateResponse resp =
        reg.Submit(EstimateRequest::Point(x, 4, 0.5f, "m" + std::to_string(i)))
            .get();
    float expected = float(100 * i) + (0.1f + 0.2f + 0.3f + 0.4f) + 0.5f;
    ASSERT_EQ(resp.estimates.size(), 1u);
    EXPECT_FLOAT_EQ(resp.estimates[0], expected) << "route m" << i;
  }
  reg.Drain();
}

TEST(ShardedRegistryTest, DefaultRouteResolvesBeforeHashing) {
  ShardedConfig cfg = MakeConfig(4);
  cfg.server.model_name = "primary";
  ShardedRegistry reg(cfg);
  reg.Publish(std::make_shared<AffineEstimator>(7.0f));  // Default route.
  // "" and "primary" must land on the same shard — the same model.
  EXPECT_EQ(reg.ShardOf(""), reg.ShardOf("primary"));
  float x[4] = {0.0f, 0.0f, 0.0f, 0.0f};
  EstimateResponse via_empty =
      reg.Submit(EstimateRequest::Point(x, 4, 1.0f)).get();
  EstimateResponse via_name =
      reg.Submit(EstimateRequest::Point(x, 4, 1.0f, "primary")).get();
  EXPECT_EQ(via_empty.estimates[0], via_name.estimates[0]);
  EXPECT_EQ(via_empty.version, via_name.version);
}

TEST(ShardedRegistryTest, UnknownRouteFailsRequestNotProcess) {
  ShardedRegistry reg(MakeConfig(2));
  reg.Publish("known", std::make_shared<AffineEstimator>(0.0f));
  float x[4] = {0};
  auto fut = reg.Submit(EstimateRequest::Point(x, 4, 0.5f, "nope"));
  EXPECT_THROW(fut.get(), std::runtime_error);
  // The fleet still serves.
  EstimateResponse ok =
      reg.Submit(EstimateRequest::Point(x, 4, 0.5f, "known")).get();
  EXPECT_EQ(ok.estimates.size(), 1u);
}

TEST(ShardedRegistryTest, HotShardDoesNotStallOtherShards) {
  // One route's model sleeps per batch, saturating its shard's single
  // worker. Requests to a route on ANOTHER shard must keep completing at
  // interactive latency — the per-shard pool slice is the isolation.
  ShardedConfig cfg = MakeConfig(2);
  ShardedRegistry reg(cfg);
  // Find two routes on different shards.
  std::string slow_route = "slow", fast_route;
  for (int i = 0; i < 64; ++i) {
    std::string cand = "fast" + std::to_string(i);
    if (reg.ShardOf(cand) != reg.ShardOf(slow_route)) {
      fast_route = cand;
      break;
    }
  }
  ASSERT_FALSE(fast_route.empty());
  reg.Publish(slow_route,
              std::make_shared<AffineEstimator>(0.0f, /*sleep_ms=*/80));
  reg.Publish(fast_route, std::make_shared<AffineEstimator>(1.0f));

  float x[4] = {0.5f, 0.5f, 0.5f, 0.5f};
  // Keep the slow shard permanently busy.
  std::vector<std::future<EstimateResponse>> slow;
  for (int i = 0; i < 8; ++i) {
    slow.push_back(reg.Submit(EstimateRequest::Point(x, 4, 0.1f, slow_route)));
  }
  // Fast-shard requests while the slow shard grinds.
  util::Stopwatch watch;
  for (int i = 0; i < 5; ++i) {
    reg.Submit(EstimateRequest::Point(x, 4, 0.1f, fast_route)).get();
  }
  double fast_ms = watch.ElapsedMillis();
  // 8 slow batches x 80ms each = 640ms of queued slow work; the fast route
  // finishing far under that proves it never waited behind the hot shard.
  EXPECT_LT(fast_ms, 300.0);
  for (auto& f : slow) f.get();
  reg.Drain();
}

TEST(ShardedRegistryTest, PerShardStatsAggregate) {
  ShardedRegistry reg(MakeConfig(2));
  reg.Publish("a", std::make_shared<AffineEstimator>(0.0f));
  reg.Publish("b", std::make_shared<AffineEstimator>(1.0f));
  float x[4] = {0.1f, 0.1f, 0.1f, 0.1f};
  const int kPer = 10;
  for (int i = 0; i < kPer; ++i) {
    reg.Submit(EstimateRequest::Point(x, 4, 0.2f, "a")).get();
    reg.Submit(EstimateRequest::Point(x, 4, 0.2f, "b")).get();
  }
  reg.Drain();
  std::vector<StatsSnapshot> per_shard = reg.ShardSnapshots();
  uint64_t summed = 0;
  for (const auto& s : per_shard) summed += s.requests;
  StatsSnapshot agg = reg.AggregateSnapshot();
  EXPECT_EQ(summed, uint64_t(2 * kPer));
  EXPECT_EQ(agg.requests, summed);
  // Each route appears exactly once across all shard route tables.
  size_t route_rows = 0;
  for (const auto& s : per_shard) route_rows += s.routes.size();
  EXPECT_EQ(route_rows, agg.routes.size());
  std::string report = reg.StatsReport();
  EXPECT_NE(report.find("sharded serving"), std::string::npos);
  EXPECT_NE(report.find("total"), std::string::npos);
}

TEST(AggregateSnapshotsTest, SummaryOnlySnapshotsFallBackToWorstShard) {
  // Hand-built snapshots with no histogram data (e.g. an external exporter)
  // cannot produce a true merged percentile; the aggregate falls back to the
  // worst shard and a request-weighted mean.
  StatsSnapshot a;
  a.requests = 10;
  a.latency_mean_ms = 1.0;
  a.latency_p99_ms = 2.0;
  StatsSnapshot b;
  b.requests = 30;
  b.latency_mean_ms = 5.0;
  b.latency_p99_ms = 9.0;
  StatsSnapshot agg = AggregateSnapshots({a, b});
  EXPECT_EQ(agg.requests, 40u);
  // (1*10 + 5*30) / 40 — the fleet mean, not the worst shard's mean.
  EXPECT_DOUBLE_EQ(agg.latency_mean_ms, 4.0);
  EXPECT_DOUBLE_EQ(agg.latency_p99_ms, 9.0);
}

TEST(AggregateSnapshotsTest, MergedHistogramGivesPooledPercentiles) {
  // Two shards with very different latency profiles. The fleet p99 must be
  // the percentile of the POOLED samples (computed by bucket merge), not the
  // worst shard's p99 — with 9:1 traffic skew toward the fast shard the two
  // answers differ by an order of magnitude.
  util::LatencyHistogram fast_hist;
  util::LatencyHistogram slow_hist;
  std::vector<double> pooled;
  for (int i = 0; i < 990; ++i) {
    double ms = 1.0 + 0.001 * i;  // Fast shard: ~1..2ms.
    fast_hist.Record(ms);
    pooled.push_back(ms);
  }
  for (int i = 0; i < 10; ++i) {
    double ms = 50.0 + 1.0 * i;  // Slow shard: 50..59ms.
    slow_hist.Record(ms);
    pooled.push_back(ms);
  }
  StatsSnapshot a;
  a.requests = 990;
  a.latency_hist = fast_hist.Snapshot();
  a.latency_p99_ms = a.latency_hist.ValueAtQuantile(0.99);
  StatsSnapshot b;
  b.requests = 10;
  b.latency_hist = slow_hist.Snapshot();
  b.latency_p99_ms = b.latency_hist.ValueAtQuantile(0.99);

  StatsSnapshot agg = AggregateSnapshots({a, b});
  EXPECT_EQ(agg.latency_hist.count, 1000u);

  std::sort(pooled.begin(), pooled.end());
  for (double q : {0.50, 0.90, 0.99}) {
    double reference = PercentileOfSorted(pooled, q);
    double merged = agg.latency_hist.ValueAtQuantile(q);
    // Within the histogram's documented relative error bound (plus tick
    // rounding slack).
    EXPECT_NEAR(merged, reference,
                reference * util::HistogramSnapshot::kRelativeErrorBound +
                    0.002)
        << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(agg.latency_p99_ms, agg.latency_hist.ValueAtQuantile(0.99));
  // The old worst-shard answer (slow shard's p99 ~= 60ms) would be ~10x the
  // pooled p99 (~6ms boundary region); assert we are NOT reporting it.
  EXPECT_LT(agg.latency_p99_ms, 0.9 * b.latency_p99_ms);
}

TEST(ShardedRegistryTest, HotSwapStaysShardLocal) {
  ShardedRegistry reg(MakeConfig(3));
  reg.Publish("stable", std::make_shared<AffineEstimator>(5.0f));
  std::string swapped = "swapped";
  reg.Publish(swapped, std::make_shared<AffineEstimator>(1.0f));
  size_t swap_shard = reg.ShardOf(swapped);
  uint64_t stable_version_before =
      reg.shard(reg.ShardOf("stable")).registry().VersionOf("stable");
  // Republishing one route bumps only its own shard's registry state.
  reg.Publish(swapped, std::make_shared<AffineEstimator>(2.0f));
  EXPECT_EQ(reg.shard(reg.ShardOf("stable")).registry().VersionOf("stable"),
            stable_version_before);
  EXPECT_GE(reg.shard(swap_shard).registry().VersionOf(swapped), 2u);
  float x[4] = {0};
  EstimateResponse resp =
      reg.Submit(EstimateRequest::Point(x, 4, 0.0f, swapped)).get();
  EXPECT_FLOAT_EQ(resp.estimates[0], 2.0f);  // New snapshot serves.
}

// ------------------------------------- live-update pipeline, per shard ---

class ShardPipelineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticSpec spec;
    spec.n = 400;
    spec.dim = 4;
    db_ = std::make_unique<data::Database>(data::GenerateMixture(spec),
                                           data::Metric::kEuclidean);
    data::WorkloadSpec wspec;
    wspec.num_queries = 20;
    wspec.w = 5;
    wspec.max_sel_fraction = 0.2;
    wl_ = data::GenerateWorkload(*db_, wspec);
    ctx_.db = db_.get();
    ctx_.workload = &wl_;
    ctx_.epochs = 3;
    cfg_.input_dim = 4;
    cfg_.tmax = wl_.tmax;
    cfg_.num_control = 5;
    cfg_.latent_dim = 2;
    cfg_.ae_hidden = 12;
    cfg_.tau_hidden = 12;
    cfg_.p_hidden = 16;
    cfg_.embed_h = 4;
    cfg_.ae_pretrain_epochs = 1;
    model_ = std::make_shared<core::SelNetCt>(cfg_);
    model_->Fit(ctx_);
  }

  std::unique_ptr<data::Database> db_;
  data::Workload wl_;
  eval::TrainContext ctx_;
  core::SelNetConfig cfg_;
  std::shared_ptr<core::SelNetCt> model_;
};

TEST_F(ShardPipelineFixture, PipelineRepublishesOnOwningShard) {
  ShardedRegistry reg(MakeConfig(2, /*dim=*/4));
  const std::string route = "live";
  reg.Publish(route, model_);
  size_t owner = reg.ShardOf(route);

  UpdatePipelineConfig ucfg;
  ucfg.model_name = route;
  ucfg.policy.mae_drift_fraction = 0.0;
  ucfg.policy.max_epochs = 1;
  ucfg.policy.patience = 1;
  LiveUpdatePipeline& pipeline = reg.AttachUpdatePipeline(ucfg, *db_, wl_);
  EXPECT_EQ(&pipeline, reg.shard(owner).update_pipeline());

  uint64_t version_before = reg.shard(owner).registry().VersionOf(route);
  core::UpdateOp op;
  op.is_insert = true;
  const float* hot = wl_.queries.row(wl_.valid[0].query_id);
  for (int i = 0; i < 40; ++i) op.vectors.emplace_back(hot, hot + 4);
  ASSERT_TRUE(pipeline.Submit(std::move(op)));
  pipeline.Flush();

  UpdatePipelineState state = pipeline.Snapshot();
  EXPECT_EQ(state.ops_applied, 1u);
  if (state.publishes > 0) {
    EXPECT_GT(reg.shard(owner).registry().VersionOf(route), version_before);
  }
  // The other shard's registry never heard of the route.
  EXPECT_EQ(reg.shard(1 - owner).registry().VersionOf(route), 0u);
  // Served sweep stays monotone on the republished snapshot.
  std::vector<float> ts;
  for (int i = 1; i <= 6; ++i) ts.push_back(wl_.tmax * float(i) / 6.0f);
  EstimateResponse resp =
      reg.Submit(EstimateRequest::Sweep(wl_.queries.row(0), 4, ts, route))
          .get();
  for (size_t i = 1; i < resp.estimates.size(); ++i) {
    EXPECT_GE(resp.estimates[i], resp.estimates[i - 1]);
  }
}

}  // namespace
}  // namespace selnet::serve
