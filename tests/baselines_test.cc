#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "baselines/deep_regressors.h"
#include "baselines/dln.h"
#include "baselines/gbdt.h"
#include "baselines/isotonic.h"
#include "baselines/kde.h"
#include "baselines/lsh_sampling.h"
#include "baselines/umnn.h"
#include "data/synthetic.h"

namespace selnet::bl {
namespace {

using tensor::Matrix;

// Shared fixture: small dataset + workload; parameterized over metric.
class BaselineFixture {
 public:
  explicit BaselineFixture(data::Metric metric, size_t n = 800, size_t dim = 8) {
    data::SyntheticSpec spec;
    spec.n = n;
    spec.dim = dim;
    spec.num_clusters = 5;
    spec.normalize = (metric == data::Metric::kCosine);
    db = std::make_unique<data::Database>(data::GenerateMixture(spec), metric);
    data::WorkloadSpec wspec;
    wspec.num_queries = 36;
    wspec.w = 8;
    // At n=800 the paper's n/100 ladder cap degenerates to labels in [1, 8];
    // widen it so the workload spans two orders of magnitude.
    wspec.max_sel_fraction = 0.25;
    wl = data::GenerateWorkload(*db, wspec);
    ctx.db = db.get();
    ctx.workload = &wl;
    ctx.epochs = 40;
  }

  double ConstantPredictorMae() const {
    double log_sum = 0.0;
    for (const auto& s : wl.test) log_sum += std::log(s.y + 1.0);
    double c = std::exp(log_sum / static_cast<double>(wl.test.size())) - 1.0;
    double mae = 0.0;
    for (const auto& s : wl.test) mae += std::fabs(s.y - c);
    return mae / static_cast<double>(wl.test.size());
  }

  double TestMae(eval::Estimator* model) const {
    data::Batch b = data::MaterializeAll(wl.queries, wl.test);
    Matrix yhat = model->Predict(b.x, b.t);
    double mae = 0.0;
    for (size_t i = 0; i < b.y.size(); ++i) {
      mae += std::fabs(static_cast<double>(yhat(i, 0)) - b.y(i, 0));
    }
    return mae / static_cast<double>(b.y.size());
  }

  bool MonotoneOnGrid(eval::Estimator* model, size_t query, size_t grid = 48,
                      float tol = 1e-3f) const {
    Matrix x(grid, wl.queries.cols()), t(grid, 1);
    for (size_t i = 0; i < grid; ++i) {
      std::copy(wl.queries.row(query), wl.queries.row(query) + wl.queries.cols(),
                x.row(i));
      t(i, 0) = wl.tmax * static_cast<float>(i) / static_cast<float>(grid - 1);
    }
    Matrix yhat = model->Predict(x, t);
    for (size_t i = 1; i < grid; ++i) {
      if (yhat(i, 0) < yhat(i - 1, 0) - tol) return false;
    }
    return true;
  }

  std::unique_ptr<data::Database> db;
  data::Workload wl;
  eval::TrainContext ctx;
};

// ---------------------------------------------------------------------------
// KDE
// ---------------------------------------------------------------------------

TEST(KdeTest, BeatsConstantAndIsMonotone) {
  BaselineFixture fx(data::Metric::kEuclidean);
  KdeConfig cfg;
  cfg.num_samples = 400;
  KdeEstimator kde(cfg);
  kde.Fit(fx.ctx);
  EXPECT_LT(fx.TestMae(&kde), fx.ConstantPredictorMae());
  for (size_t q = 0; q < 5; ++q) EXPECT_TRUE(fx.MonotoneOnGrid(&kde, q));
}

TEST(KdeTest, FullSampleApproachesExactAtLargeThreshold) {
  BaselineFixture fx(data::Metric::kEuclidean, 300);
  KdeConfig cfg;
  cfg.num_samples = 300;  // the whole database
  KdeEstimator kde(cfg);
  kde.Fit(fx.ctx);
  // At a threshold much larger than the data diameter the estimate must
  // approach n (Phi saturates at 1 for every sample).
  Matrix x(1, 8), t(1, 1);
  std::copy(fx.wl.queries.row(0), fx.wl.queries.row(0) + 8, x.row(0));
  t(0, 0) = 100.0f;
  Matrix yhat = kde.Predict(x, t);
  EXPECT_NEAR(yhat(0, 0), 300.0f, 3.0f);
}

TEST(KdeTest, WorksOnCosine) {
  BaselineFixture fx(data::Metric::kCosine);
  KdeConfig cfg;
  cfg.num_samples = 300;
  KdeEstimator kde(cfg);
  kde.Fit(fx.ctx);
  EXPECT_LT(fx.TestMae(&kde), fx.ConstantPredictorMae());
}

// ---------------------------------------------------------------------------
// LSH
// ---------------------------------------------------------------------------

TEST(LshTest, SignatureIsDeterministicAndScaleInvariant) {
  BaselineFixture fx(data::Metric::kCosine);
  LshEstimator lsh;
  lsh.Fit(fx.ctx);
  const float* q = fx.wl.queries.row(0);
  EXPECT_EQ(lsh.Signature(q), lsh.Signature(q));
  std::vector<float> scaled(q, q + 8);
  for (auto& v : scaled) v *= 3.0f;  // SimHash depends on direction only
  EXPECT_EQ(lsh.Signature(q), lsh.Signature(scaled.data()));
}

TEST(LshTest, FullBudgetIsExact) {
  BaselineFixture fx(data::Metric::kCosine, 300);
  LshConfig cfg;
  cfg.sample_budget = 100000;  // >= every stratum: estimator becomes a scan
  LshEstimator lsh(cfg);
  lsh.Fit(fx.ctx);
  for (size_t i = 0; i < 20; ++i) {
    const auto& s = fx.wl.test[i];
    Matrix x(1, 8), t(1, 1);
    std::copy(fx.wl.queries.row(s.query_id), fx.wl.queries.row(s.query_id) + 8,
              x.row(0));
    t(0, 0) = s.t;
    Matrix yhat = lsh.Predict(x, t);
    EXPECT_NEAR(yhat(0, 0), s.y, 1e-3f);
  }
}

TEST(LshTest, ConsistentAcrossThresholds) {
  BaselineFixture fx(data::Metric::kCosine);
  LshConfig cfg;
  cfg.sample_budget = 500;
  LshEstimator lsh(cfg);
  lsh.Fit(fx.ctx);
  for (size_t q = 0; q < 5; ++q) EXPECT_TRUE(fx.MonotoneOnGrid(&lsh, q));
}

TEST(LshTest, ReasonableAccuracyWithSmallBudget) {
  BaselineFixture fx(data::Metric::kCosine);
  LshConfig cfg;
  cfg.sample_budget = 400;
  LshEstimator lsh(cfg);
  lsh.Fit(fx.ctx);
  EXPECT_LT(fx.TestMae(&lsh), fx.ConstantPredictorMae());
}

// ---------------------------------------------------------------------------
// GBDT
// ---------------------------------------------------------------------------

TEST(GbdtTest, FitsWorkload) {
  BaselineFixture fx(data::Metric::kEuclidean);
  GbdtConfig cfg;
  cfg.num_trees = 60;
  GbdtEstimator gbdt(cfg);
  gbdt.Fit(fx.ctx);
  EXPECT_EQ(gbdt.num_trees(), 60u);
  EXPECT_LT(fx.TestMae(&gbdt), fx.ConstantPredictorMae());
}

TEST(GbdtTest, MonotoneVariantIsConsistent) {
  BaselineFixture fx(data::Metric::kEuclidean);
  GbdtConfig cfg;
  cfg.num_trees = 60;
  cfg.monotone_t = true;
  GbdtEstimator gbdt(cfg);
  EXPECT_TRUE(gbdt.IsConsistent());
  gbdt.Fit(fx.ctx);
  for (size_t q = 0; q < 8; ++q) {
    EXPECT_TRUE(fx.MonotoneOnGrid(&gbdt, q, 64)) << "query " << q;
  }
}

TEST(GbdtTest, UnconstrainedVariantNotMarkedConsistent) {
  GbdtEstimator gbdt;
  EXPECT_FALSE(gbdt.IsConsistent());
  EXPECT_EQ(gbdt.Name(), "LightGBM");
  GbdtConfig mono;
  mono.monotone_t = true;
  EXPECT_EQ(GbdtEstimator(mono).Name(), "LightGBM-m");
}

// ---------------------------------------------------------------------------
// Deep regressors
// ---------------------------------------------------------------------------

class DeepRegressorParam : public ::testing::TestWithParam<int> {};

TEST_P(DeepRegressorParam, BeatsConstantPredictor) {
  BaselineFixture fx(data::Metric::kEuclidean);
  DeepConfig cfg;
  cfg.input_dim = 8;
  cfg.hidden = {48, 48};
  cfg.expert_hidden = {32};
  cfg.num_experts = 4;
  cfg.top_k = 2;
  cfg.num_leaves = 2;
  cfg.batch_size = 64;
  std::unique_ptr<eval::Estimator> model;
  switch (GetParam()) {
    case 0: model = std::make_unique<DnnRegressor>(cfg, 5); break;
    case 1: model = std::make_unique<MoeRegressor>(cfg, 6); break;
    default: model = std::make_unique<RmiRegressor>(cfg, 7); break;
  }
  fx.ctx.epochs = 40;
  model->Fit(fx.ctx);
  EXPECT_LT(fx.TestMae(model.get()), fx.ConstantPredictorMae());
  EXPECT_FALSE(model->IsConsistent());
}

INSTANTIATE_TEST_SUITE_P(DnnMoeRmi, DeepRegressorParam,
                         ::testing::Values(0, 1, 2));

TEST(DeepRegressorTest, PredictionsNonNegative) {
  BaselineFixture fx(data::Metric::kEuclidean);
  DeepConfig cfg;
  cfg.input_dim = 8;
  cfg.hidden = {32};
  DnnRegressor dnn(cfg, 9);
  fx.ctx.epochs = 3;
  dnn.Fit(fx.ctx);
  data::Batch b = data::MaterializeAll(fx.wl.queries, fx.wl.test);
  Matrix yhat = dnn.Predict(b.x, b.t);
  for (size_t i = 0; i < yhat.size(); ++i) EXPECT_GE(yhat.data()[i], 0.0f);
}

// ---------------------------------------------------------------------------
// DLN
// ---------------------------------------------------------------------------

TEST(DlnTest, ConsistentByConstruction) {
  BaselineFixture fx(data::Metric::kEuclidean);
  DlnConfig cfg;
  cfg.input_dim = 8;
  DlnEstimator dln(cfg, 11);
  EXPECT_TRUE(dln.IsConsistent());
  fx.ctx.epochs = 8;
  dln.Fit(fx.ctx);
  for (size_t q = 0; q < 8; ++q) {
    EXPECT_TRUE(fx.MonotoneOnGrid(&dln, q, 64)) << "query " << q;
  }
}

TEST(DlnTest, LearnsSomething) {
  BaselineFixture fx(data::Metric::kEuclidean);
  DlnConfig cfg;
  cfg.input_dim = 8;
  DlnEstimator dln(cfg, 12);
  fx.ctx.epochs = 10;
  dln.Fit(fx.ctx);
  EXPECT_LT(fx.TestMae(&dln), fx.ConstantPredictorMae() * 1.5);
}

// ---------------------------------------------------------------------------
// UMNN
// ---------------------------------------------------------------------------

TEST(UmnnTest, ClenshawCurtisWeightsSumToTwo) {
  for (size_t n : {4u, 8u, 16u, 32u}) {
    std::vector<double> nodes, weights;
    ClenshawCurtisRule(n, &nodes, &weights);
    double sum = 0.0;
    for (double w : weights) sum += w;
    EXPECT_NEAR(sum, 2.0, 1e-9) << "n=" << n;  // integral of 1 over [-1,1]
  }
}

TEST(UmnnTest, QuadratureIntegratesSmoothFunctions) {
  std::vector<double> nodes, weights;
  ClenshawCurtisRule(16, &nodes, &weights);
  // f(x) = x^2 over [-1,1] -> 2/3.
  double q1 = 0.0;
  for (size_t j = 0; j < nodes.size(); ++j) q1 += weights[j] * nodes[j] * nodes[j];
  EXPECT_NEAR(q1, 2.0 / 3.0, 1e-8);
  // f(x) = exp(x) over [-1,1] -> e - 1/e.
  double q2 = 0.0;
  for (size_t j = 0; j < nodes.size(); ++j) q2 += weights[j] * std::exp(nodes[j]);
  EXPECT_NEAR(q2, std::exp(1.0) - std::exp(-1.0), 1e-8);
  // f(x) = cos(3x) over [-1,1] -> 2 sin(3)/3.
  double q3 = 0.0;
  for (size_t j = 0; j < nodes.size(); ++j) q3 += weights[j] * std::cos(3 * nodes[j]);
  EXPECT_NEAR(q3, 2.0 * std::sin(3.0) / 3.0, 1e-6);
}

TEST(UmnnTest, ConsistentAndLearns) {
  BaselineFixture fx(data::Metric::kEuclidean);
  UmnnConfig cfg;
  cfg.input_dim = 8;
  cfg.hidden = 32;
  cfg.quad_points = 8;
  UmnnEstimator umnn(cfg, 13);
  EXPECT_TRUE(umnn.IsConsistent());
  fx.ctx.epochs = 8;
  umnn.Fit(fx.ctx);
  for (size_t q = 0; q < 6; ++q) {
    EXPECT_TRUE(fx.MonotoneOnGrid(&umnn, q, 48)) << "query " << q;
  }
  EXPECT_LT(fx.TestMae(&umnn), fx.ConstantPredictorMae() * 1.5);
}

TEST(UmnnTest, ZeroThresholdGivesBiasOnly) {
  BaselineFixture fx(data::Metric::kEuclidean);
  UmnnConfig cfg;
  cfg.input_dim = 8;
  cfg.hidden = 16;
  cfg.quad_points = 8;
  UmnnEstimator umnn(cfg, 14);
  fx.ctx.epochs = 1;
  umnn.Fit(fx.ctx);
  // f(x, 0) = 0-length integral + bias >= 0; must be finite and non-negative.
  Matrix x(1, 8), t(1, 1);
  std::copy(fx.wl.queries.row(0), fx.wl.queries.row(0) + 8, x.row(0));
  t(0, 0) = 0.0f;
  Matrix yhat = umnn.Predict(x, t);
  EXPECT_GE(yhat(0, 0), 0.0f);
  EXPECT_TRUE(yhat.AllFinite());
}

// ---------------------------------------------------------------------------
// Isotonic (PAVA)
// ---------------------------------------------------------------------------

TEST(IsotonicTest, OutputIsMonotone) {
  util::Rng rng(15);
  std::vector<double> y(50);
  for (auto& v : y) v = rng.Normal();
  auto fit = PavaIsotonic(y);
  EXPECT_TRUE(IsNonDecreasing(fit, 1e-12));
}

TEST(IsotonicTest, IdempotentOnMonotoneInput) {
  std::vector<double> y = {1, 2, 2, 3, 5, 8};
  auto fit = PavaIsotonic(y);
  for (size_t i = 0; i < y.size(); ++i) EXPECT_DOUBLE_EQ(fit[i], y[i]);
}

TEST(IsotonicTest, PreservesMean) {
  util::Rng rng(16);
  std::vector<double> y(40);
  for (auto& v : y) v = rng.Uniform(-5, 5);
  auto fit = PavaIsotonic(y);
  double sy = 0, sf = 0;
  for (size_t i = 0; i < y.size(); ++i) {
    sy += y[i];
    sf += fit[i];
  }
  EXPECT_NEAR(sy, sf, 1e-9);
}

TEST(IsotonicTest, SimpleViolatorPooling) {
  std::vector<double> y = {3.0, 1.0};
  auto fit = PavaIsotonic(y);
  EXPECT_DOUBLE_EQ(fit[0], 2.0);
  EXPECT_DOUBLE_EQ(fit[1], 2.0);
}

TEST(IsotonicTest, WeightedPooling) {
  std::vector<double> y = {3.0, 1.0};
  std::vector<double> w = {1.0, 3.0};
  auto fit = PavaIsotonic(y, w);
  EXPECT_DOUBLE_EQ(fit[0], 1.5);  // (3*1 + 1*3) / 4
  EXPECT_DOUBLE_EQ(fit[1], 1.5);
}

TEST(IsotonicTest, MatchesBruteForceProjection) {
  // For tiny inputs, compare with an exhaustive projected-gradient solve.
  std::vector<double> y = {2.0, 0.0, 1.0};
  auto fit = PavaIsotonic(y);
  // Optimal: pool {2,0} -> 1,1 then {1,1,1}: actually {1,1,1} has SSE 2.0;
  // alternative {1,1,1}. Verify by checking SSE against a few candidates.
  auto sse = [&](const std::vector<double>& f) {
    double s = 0;
    for (size_t i = 0; i < y.size(); ++i) s += (f[i] - y[i]) * (f[i] - y[i]);
    return s;
  };
  EXPECT_TRUE(IsNonDecreasing(fit, 1e-12));
  EXPECT_LE(sse(fit), sse({1.0, 1.0, 1.0}) + 1e-9);
  EXPECT_LE(sse(fit), sse({0.5, 0.5, 1.0}) + 1e-9);
}

}  // namespace
}  // namespace selnet::bl
