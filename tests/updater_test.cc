#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/selnet_ct.h"
#include "core/updater.h"
#include "data/synthetic.h"
#include "serve/server.h"
#include "serve/update_pipeline.h"

namespace selnet::core {
namespace {

class UpdaterFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_.n = 700;
    spec_.dim = 6;
    spec_.num_clusters = 4;
    db_ = std::make_unique<data::Database>(data::GenerateMixture(spec_),
                                           data::Metric::kEuclidean);
    data::WorkloadSpec wspec;
    wspec.num_queries = 30;
    wspec.w = 6;
    wspec.max_sel_fraction = 0.2;
    wl_ = data::GenerateWorkload(*db_, wspec);
    ctx_.db = db_.get();
    ctx_.workload = &wl_;
    ctx_.epochs = 6;

    SelNetConfig cfg;
    cfg.input_dim = 6;
    cfg.tmax = wl_.tmax;
    cfg.num_control = 6;
    cfg.latent_dim = 3;
    cfg.ae_hidden = 16;
    cfg.tau_hidden = 24;
    cfg.p_hidden = 32;
    cfg.embed_h = 6;
    cfg.ae_pretrain_epochs = 2;
    model_ = std::make_unique<SelNetCt>(cfg);
    model_->Fit(ctx_);
  }

  data::SyntheticSpec spec_;
  std::unique_ptr<data::Database> db_;
  data::Workload wl_;
  eval::TrainContext ctx_;
  std::unique_ptr<SelNetCt> model_;
};

TEST_F(UpdaterFixture, InsertKeepsLabelsExact) {
  UpdatePolicy policy;
  policy.mae_drift_fraction = 1e9;  // never retrain; isolate label patching
  UpdateManager mgr(db_.get(), &wl_, model_.get(), ctx_, policy);

  UpdateOp op;
  op.is_insert = true;
  tensor::Matrix fresh = data::DrawFromSameMixture(spec_, 5, 123);
  for (size_t i = 0; i < 5; ++i) {
    op.vectors.emplace_back(fresh.row(i), fresh.row(i) + 6);
  }
  UpdateResult res = mgr.Apply(op);
  EXPECT_FALSE(res.retrained);
  EXPECT_EQ(db_->size(), 705u);

  std::vector<data::QuerySample> relabeled = wl_.train;
  data::RelabelExact(*db_, wl_.queries, &relabeled);
  for (size_t i = 0; i < relabeled.size(); ++i) {
    EXPECT_FLOAT_EQ(wl_.train[i].y, relabeled[i].y);
  }
}

TEST_F(UpdaterFixture, DeleteKeepsLabelsExact) {
  UpdatePolicy policy;
  policy.mae_drift_fraction = 1e9;
  UpdateManager mgr(db_.get(), &wl_, model_.get(), ctx_, policy);
  UpdateOp op;
  op.is_insert = false;
  auto live = db_->LiveIds();
  op.ids = {live[3], live[17], live[101]};
  mgr.Apply(op);
  EXPECT_EQ(db_->size(), 697u);
  std::vector<data::QuerySample> relabeled = wl_.test;
  data::RelabelExact(*db_, wl_.queries, &relabeled);
  for (size_t i = 0; i < relabeled.size(); ++i) {
    EXPECT_FLOAT_EQ(wl_.test[i].y, relabeled[i].y);
  }
}

TEST_F(UpdaterFixture, SmallDriftDoesNotRetrain) {
  UpdatePolicy policy;
  policy.mae_drift_fraction = 100.0;  // effectively never
  UpdateManager mgr(db_.get(), &wl_, model_.get(), ctx_, policy);
  UpdateOp op;
  op.is_insert = true;
  tensor::Matrix fresh = data::DrawFromSameMixture(spec_, 1, 5);
  op.vectors.emplace_back(fresh.row(0), fresh.row(0) + 6);
  UpdateResult res = mgr.Apply(op);
  EXPECT_FALSE(res.retrained);
  EXPECT_EQ(res.epochs, 0u);
}

TEST_F(UpdaterFixture, ParallelPatchMatchesSerialReference) {
  // PatchLabels shards the per-sample distance tests over the pool; every
  // sample is independent, so the result must be bit-identical to an inline
  // serial pass regardless of scheduling. The fixture's train split is
  // smaller than the sharding grain (512), which would serial-fall-back —
  // tile it past the grain so multi-core runs (the TSan CI job) actually
  // drive the parallel path.
  std::vector<data::QuerySample> parallel;
  while (parallel.size() <= 1200) {
    parallel.insert(parallel.end(), wl_.train.begin(), wl_.train.end());
  }
  std::vector<data::QuerySample> serial = parallel;
  tensor::Matrix fresh = data::DrawFromSameMixture(spec_, 8, 77);
  for (size_t r = 0; r < fresh.rows(); ++r) {
    const float* vec = fresh.row(r);
    size_t dim = wl_.queries.cols();
    for (auto& s : serial) {
      float d = data::Distance(wl_.queries.row(s.query_id), vec, dim,
                               wl_.metric);
      if (d <= s.t) s.y += 1.0f;
    }
    data::PatchLabels(wl_.queries, wl_.metric, vec, +1, &parallel);
  }
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].y, parallel[i].y) << "sample " << i;
  }
}

TEST_F(UpdaterFixture, CloneIsDeepAndPredictsIdentically) {
  std::unique_ptr<SelNetCt> clone = model_->Clone();
  data::Batch b = data::MaterializeAll(wl_.queries, wl_.test);
  tensor::Matrix original = model_->Predict(b.x, b.t);
  tensor::Matrix cloned = clone->Predict(b.x, b.t);
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(original.data()[i], cloned.data()[i]) << "row " << i;
  }
  // Deep: mutating the source must not leak into the clone.
  for (const auto& p : model_->Params()) {
    p->value.Apply([](float v) { return v * 1.5f + 0.1f; });
  }
  model_->InvalidateInferenceCache();
  tensor::Matrix after = clone->Predict(b.x, b.t);
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(original.data()[i], after.data()[i]) << "row " << i;
  }
}

TEST_F(UpdaterFixture, PipelineShadowRetrainMatchesDirectIncrementalFit) {
  // The shadow-retrain equivalence contract: the pipeline's clone-retrain,
  // fed the same ops, must land on exactly the parameters a direct
  // UpdateManager incremental fit produces — Clone copies the rng stream, so
  // the epoch shuffles, batches, and Adam trajectory coincide bit-for-bit.
  UpdatePolicy policy;
  policy.mae_drift_fraction = 0.05;
  policy.max_epochs = 3;
  policy.patience = 1;

  UpdateOp op;
  op.is_insert = true;
  const float* hot = wl_.queries.row(wl_.valid.front().query_id);
  for (int i = 0; i < 150; ++i) op.vectors.emplace_back(hot, hot + 6);

  // Direct path: private copies of everything, synchronous Apply.
  std::unique_ptr<SelNetCt> direct_model = model_->Clone();
  data::Database direct_db = *db_;
  data::Workload direct_wl = wl_;
  eval::TrainContext ctx;  // db/workload are bound by the manager.
  UpdateManager direct_mgr(&direct_db, &direct_wl, direct_model.get(), ctx,
                           policy);
  UpdateResult direct_res = direct_mgr.Apply(op);
  ASSERT_TRUE(direct_res.retrained);
  ASSERT_GT(direct_res.epochs, 0u);

  // Pipeline path: publish an identical clone, attach, submit the same op.
  serve::ServerConfig scfg;
  scfg.dim = 6;
  scfg.enable_batching = false;
  scfg.enable_cache = false;
  serve::SelNetServer server(scfg);
  uint64_t v0 = server.Publish(std::shared_ptr<SelNetCt>(model_->Clone()));
  serve::UpdatePipelineConfig ucfg;
  ucfg.policy = policy;
  serve::LiveUpdatePipeline& pipeline =
      server.AttachUpdatePipeline(ucfg, *db_, wl_);
  ASSERT_TRUE(pipeline.Submit(op));
  pipeline.Flush();

  serve::UpdatePipelineState state = pipeline.Snapshot();
  EXPECT_EQ(state.ops_applied, 1u);
  EXPECT_EQ(state.retrains_triggered, 1u);
  EXPECT_EQ(state.epochs_run, direct_res.epochs);
  EXPECT_EQ(state.publishes, 1u);
  EXPECT_GT(state.last_published_version, v0);
  EXPECT_EQ(server.registry().VersionOf("default"),
            state.last_published_version);

  std::vector<tensor::Matrix> shadow = pipeline.ShadowParamsSnapshot();
  std::vector<ag::Var> direct_params = direct_model->Params();
  ASSERT_EQ(shadow.size(), direct_params.size());
  for (size_t p = 0; p < shadow.size(); ++p) {
    ASSERT_EQ(shadow[p].size(), direct_params[p]->value.size());
    for (size_t i = 0; i < shadow[p].size(); ++i) {
      ASSERT_EQ(shadow[p].data()[i], direct_params[p]->value.data()[i])
          << "param " << p << " element " << i;
    }
  }

  // The PUBLISHED snapshot predicts exactly like the direct fit too.
  data::Batch b = data::MaterializeAll(wl_.queries, wl_.test);
  tensor::Matrix expected = direct_model->Predict(b.x, b.t);
  auto handle = server.registry().Get("default");
  ASSERT_TRUE(handle.ok());
  tensor::Matrix served = handle.ValueOrDie().model->Predict(b.x, b.t);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected.data()[i], served.data()[i]) << "row " << i;
  }
}

TEST_F(UpdaterFixture, MassiveUpdateTriggersRetraining) {
  UpdatePolicy policy;
  policy.mae_drift_fraction = 0.05;
  policy.max_epochs = 4;
  policy.patience = 1;
  UpdateManager mgr(db_.get(), &wl_, model_.get(), ctx_, policy);
  // Insert many duplicates of one query point: its ball counts explode, so
  // validation MAE drifts far beyond 5%.
  UpdateOp op;
  op.is_insert = true;
  const float* q = wl_.queries.row(wl_.valid.front().query_id);
  for (int i = 0; i < 150; ++i) {
    op.vectors.emplace_back(q, q + 6);
  }
  UpdateResult res = mgr.Apply(op);
  EXPECT_TRUE(res.retrained);
  EXPECT_GT(res.epochs, 0u);
  // Incremental learning must not end worse than the drifted state.
  EXPECT_LE(res.mae_after, res.mae_before * 1.05 + 1e-6);
}

}  // namespace
}  // namespace selnet::core
