#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/selnet_ct.h"
#include "core/updater.h"
#include "data/synthetic.h"

namespace selnet::core {
namespace {

class UpdaterFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_.n = 700;
    spec_.dim = 6;
    spec_.num_clusters = 4;
    db_ = std::make_unique<data::Database>(data::GenerateMixture(spec_),
                                           data::Metric::kEuclidean);
    data::WorkloadSpec wspec;
    wspec.num_queries = 30;
    wspec.w = 6;
    wspec.max_sel_fraction = 0.2;
    wl_ = data::GenerateWorkload(*db_, wspec);
    ctx_.db = db_.get();
    ctx_.workload = &wl_;
    ctx_.epochs = 6;

    SelNetConfig cfg;
    cfg.input_dim = 6;
    cfg.tmax = wl_.tmax;
    cfg.num_control = 6;
    cfg.latent_dim = 3;
    cfg.ae_hidden = 16;
    cfg.tau_hidden = 24;
    cfg.p_hidden = 32;
    cfg.embed_h = 6;
    cfg.ae_pretrain_epochs = 2;
    model_ = std::make_unique<SelNetCt>(cfg);
    model_->Fit(ctx_);
  }

  data::SyntheticSpec spec_;
  std::unique_ptr<data::Database> db_;
  data::Workload wl_;
  eval::TrainContext ctx_;
  std::unique_ptr<SelNetCt> model_;
};

TEST_F(UpdaterFixture, InsertKeepsLabelsExact) {
  UpdatePolicy policy;
  policy.mae_drift_fraction = 1e9;  // never retrain; isolate label patching
  UpdateManager mgr(db_.get(), &wl_, model_.get(), ctx_, policy);

  UpdateOp op;
  op.is_insert = true;
  tensor::Matrix fresh = data::DrawFromSameMixture(spec_, 5, 123);
  for (size_t i = 0; i < 5; ++i) {
    op.vectors.emplace_back(fresh.row(i), fresh.row(i) + 6);
  }
  UpdateResult res = mgr.Apply(op);
  EXPECT_FALSE(res.retrained);
  EXPECT_EQ(db_->size(), 705u);

  std::vector<data::QuerySample> relabeled = wl_.train;
  data::RelabelExact(*db_, wl_.queries, &relabeled);
  for (size_t i = 0; i < relabeled.size(); ++i) {
    EXPECT_FLOAT_EQ(wl_.train[i].y, relabeled[i].y);
  }
}

TEST_F(UpdaterFixture, DeleteKeepsLabelsExact) {
  UpdatePolicy policy;
  policy.mae_drift_fraction = 1e9;
  UpdateManager mgr(db_.get(), &wl_, model_.get(), ctx_, policy);
  UpdateOp op;
  op.is_insert = false;
  auto live = db_->LiveIds();
  op.ids = {live[3], live[17], live[101]};
  mgr.Apply(op);
  EXPECT_EQ(db_->size(), 697u);
  std::vector<data::QuerySample> relabeled = wl_.test;
  data::RelabelExact(*db_, wl_.queries, &relabeled);
  for (size_t i = 0; i < relabeled.size(); ++i) {
    EXPECT_FLOAT_EQ(wl_.test[i].y, relabeled[i].y);
  }
}

TEST_F(UpdaterFixture, SmallDriftDoesNotRetrain) {
  UpdatePolicy policy;
  policy.mae_drift_fraction = 100.0;  // effectively never
  UpdateManager mgr(db_.get(), &wl_, model_.get(), ctx_, policy);
  UpdateOp op;
  op.is_insert = true;
  tensor::Matrix fresh = data::DrawFromSameMixture(spec_, 1, 5);
  op.vectors.emplace_back(fresh.row(0), fresh.row(0) + 6);
  UpdateResult res = mgr.Apply(op);
  EXPECT_FALSE(res.retrained);
  EXPECT_EQ(res.epochs, 0u);
}

TEST_F(UpdaterFixture, MassiveUpdateTriggersRetraining) {
  UpdatePolicy policy;
  policy.mae_drift_fraction = 0.05;
  policy.max_epochs = 4;
  policy.patience = 1;
  UpdateManager mgr(db_.get(), &wl_, model_.get(), ctx_, policy);
  // Insert many duplicates of one query point: its ball counts explode, so
  // validation MAE drifts far beyond 5%.
  UpdateOp op;
  op.is_insert = true;
  const float* q = wl_.queries.row(wl_.valid.front().query_id);
  for (int i = 0; i < 150; ++i) {
    op.vectors.emplace_back(q, q + 6);
  }
  UpdateResult res = mgr.Apply(op);
  EXPECT_TRUE(res.retrained);
  EXPECT_GT(res.epochs, 0u);
  // Incremental learning must not end worse than the drifted state.
  EXPECT_LE(res.mae_after, res.mae_before * 1.05 + 1e-6);
}

}  // namespace
}  // namespace selnet::core
