#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/model_io.h"
#include "core/selnet_ct.h"
#include "data/synthetic.h"
#include "eval/estimator.h"
#include "serve/frontend.h"
#include "serve/remote_shard.h"
#include "serve/shard_node.h"
#include "serve/shard_router.h"
#include "serve/state_transfer.h"
#include "serve/wire.h"
#include "util/backoff.h"

/// Fleet invariants (PR 8): R-way replication across local + remote slots,
/// failover that loses nothing when a replica dies mid-traffic, and
/// crash-then-rejoin re-sync that serves bit-identical answers.

namespace selnet::serve {
namespace {

constexpr size_t kDim = 6;

/// One tiny trained SelNet-ct, trained ONCE for the whole suite; tests share
/// its serialized bytes (training dominates test wall-clock otherwise).
class FleetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticSpec spec;
    spec.n = 400;
    spec.dim = kDim;
    db_ = new data::Database(data::GenerateMixture(spec),
                             data::Metric::kEuclidean);
    data::WorkloadSpec wspec;
    wspec.num_queries = 15;
    wspec.w = kDim;
    wspec.max_sel_fraction = 0.2;
    wl_ = new data::Workload(data::GenerateWorkload(*db_, wspec));
    eval::TrainContext ctx;
    ctx.db = db_;
    ctx.workload = wl_;
    ctx.epochs = 4;
    core::SelNetConfig cfg;
    cfg.input_dim = kDim;
    cfg.tmax = wl_->tmax;
    cfg.num_control = 6;
    cfg.latent_dim = 3;
    cfg.ae_hidden = 16;
    cfg.tau_hidden = 20;
    cfg.p_hidden = 24;
    cfg.embed_h = 5;
    cfg.ae_pretrain_epochs = 1;
    model_ = new core::SelNetCt(cfg);
    model_->Fit(ctx);
    auto bytes = core::SaveModelBytes(*model_);
    ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
    bytes_ = new std::string(bytes.MoveValueUnsafe());
  }

  static void TearDownTestSuite() {
    delete model_;
    delete bytes_;
    delete wl_;
    delete db_;
    model_ = nullptr;
    bytes_ = nullptr;
    wl_ = nullptr;
    db_ = nullptr;
  }

  static std::vector<float> Query() {
    return std::vector<float>(wl_->queries.row(0), wl_->queries.row(0) + kDim);
  }

  static std::vector<float> SortedThresholds(size_t k) {
    std::vector<float> ts(k);
    for (size_t i = 0; i < k; ++i) {
      ts[i] = wl_->tmax * float(i + 1) / float(k + 1);
    }
    return ts;
  }

  static ShardNodeConfig NodeConfig(uint16_t port = 0) {
    ShardNodeConfig cfg;
    cfg.server.dim = kDim;
    cfg.frontend.port = port;
    cfg.frontend.drain_timeout_s = 0.2;
    cfg.threads = 1;
    return cfg;
  }

  /// Registry: one local shard + one remote node, every route on both.
  static ShardedConfig FleetConfig(uint16_t node_port) {
    ShardedConfig cfg;
    cfg.server.dim = kDim;
    cfg.num_shards = 1;
    cfg.threads_per_shard = 1;
    cfg.replication = 2;
    RemoteShardConfig remote;
    remote.port = node_port;
    remote.recv_timeout_ms = 500;
    remote.admin_timeout_ms = 2000;
    cfg.remotes.push_back(remote);
    cfg.health_interval_ms = 20.0;
    return cfg;
  }

  /// A route name whose ring primary is `slot` (deterministic hash scan).
  static std::string RouteOwnedBy(const ShardedRegistry& reg, size_t slot) {
    for (int i = 0; i < 100000; ++i) {
      std::string route = "route-" + std::to_string(i);
      if (reg.ShardOf(route) == slot) return route;
    }
    ADD_FAILURE() << "no route hashes to slot " << slot;
    return "";
  }

  static bool WaitForHealth(ShardedRegistry& reg, size_t slot,
                            ShardHealth want, double timeout_s = 10.0) {
    util::Backoff poll({/*base_ms=*/2.0, /*cap_ms=*/50.0}, /*seed=*/5);
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration<double>(timeout_s);
    while (std::chrono::steady_clock::now() < deadline) {
      if (reg.slot_health(slot) == want) return true;
      reg.NudgeHealth();
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(poll.NextDelayMs()));
    }
    return reg.slot_health(slot) == want;
  }

  static data::Database* db_;
  static data::Workload* wl_;
  static core::SelNetCt* model_;
  static std::string* bytes_;
};

data::Database* FleetTest::db_ = nullptr;
data::Workload* FleetTest::wl_ = nullptr;
core::SelNetCt* FleetTest::model_ = nullptr;
std::string* FleetTest::bytes_ = nullptr;

TEST(HashRingReplicas, DistinctPrimaryFirstAndClamped) {
  HashRing ring(5, 64);
  for (int i = 0; i < 50; ++i) {
    std::string route = "model/" + std::to_string(i);
    std::vector<size_t> reps = ring.ReplicasOf(route, 3);
    ASSERT_EQ(reps.size(), 3u);
    EXPECT_EQ(reps[0], ring.ShardOf(route));
    EXPECT_NE(reps[0], reps[1]);
    EXPECT_NE(reps[0], reps[2]);
    EXPECT_NE(reps[1], reps[2]);
    // Deterministic: same inputs, same placement.
    EXPECT_EQ(reps, ring.ReplicasOf(route, 3));
    // r=1 degenerates to the primary; r past the shard count clamps.
    EXPECT_EQ(ring.ReplicasOf(route, 1),
              std::vector<size_t>{ring.ShardOf(route)});
    EXPECT_EQ(ring.ReplicasOf(route, 99).size(), 5u);
  }
}

TEST_F(FleetTest, RemoteShardServesBitIdenticalSweeps) {
  ShardNode node(NodeConfig());
  ASSERT_TRUE(node.status().ok()) << node.status().ToString();

  // Reference: a pure-local single-shard stack serving the same bytes.
  ShardedConfig local_cfg;
  local_cfg.server.dim = kDim;
  local_cfg.num_shards = 1;
  local_cfg.threads_per_shard = 1;
  ShardedRegistry local(local_cfg);
  auto lv = local.PublishFromBytes("m", *bytes_, "fleet test");
  ASSERT_TRUE(lv.ok()) << lv.status().ToString();

  RemoteShardConfig rcfg;
  rcfg.port = node.port();
  RemoteShard remote(rcfg);
  auto rv = remote.PublishBytes("m", *bytes_);
  ASSERT_TRUE(rv.ok()) << rv.status().ToString();
  ASSERT_TRUE(remote.Connect().ok());

  std::vector<float> q = Query();
  std::vector<float> ts = SortedThresholds(9);
  EstimateRequest req = EstimateRequest::Sweep(q.data(), kDim, ts, "m");
  req.tag = 42;

  std::promise<EstimateResponse> got;
  remote.SubmitWith(req, [&](EstimateResponse&& resp, std::exception_ptr err) {
    if (err) {
      got.set_exception(err);
    } else {
      got.set_value(std::move(resp));
    }
  });
  EstimateResponse over_wire = got.get_future().get();
  EstimateResponse in_process = local.Submit(req).get();

  EXPECT_EQ(over_wire.tag, 42u);  // Internal wire tags never leak out.
  ASSERT_EQ(over_wire.estimates.size(), ts.size());
  for (size_t i = 0; i < ts.size(); ++i) {
    // Bit-identical across the wire (shortest-round-trip float encoding).
    EXPECT_EQ(over_wire.estimates[i], in_process.estimates[i]) << i;
    if (i > 0) {
      EXPECT_GE(over_wire.estimates[i], over_wire.estimates[i - 1])
          << "sweep monotonicity broken at " << i;
    }
  }
  EXPECT_EQ(remote.pending(), 0u);
}

TEST_F(FleetTest, ReplicaDeathMidBatchLosesNoRequests) {
  auto node = std::make_unique<ShardNode>(NodeConfig());
  ASSERT_TRUE(node->status().ok());

  ShardedRegistry reg(FleetConfig(node->port()));
  ASSERT_TRUE(WaitForHealth(reg, 1, ShardHealth::kHealthy));

  // A route whose PRIMARY is the remote slot: its traffic rides the wire
  // until the node dies, then must fail over to the local replica.
  std::string route = RouteOwnedBy(reg, 1);
  auto version = reg.PublishFromBytes(route, *bytes_, "fleet test");
  ASSERT_TRUE(version.ok()) << version.status().ToString();

  std::vector<float> q = Query();
  std::vector<float> ts = SortedThresholds(5);
  auto make_req = [&] {
    EstimateRequest req = EstimateRequest::Sweep(q.data(), kDim, ts, route);
    return req;
  };

  // Reference answer, computed before any failure.
  EstimateResponse reference = reg.Submit(make_req()).get();
  ASSERT_EQ(reference.estimates.size(), ts.size());

  constexpr size_t kBefore = 10, kInflight = 10, kAfter = 20;
  size_t completed = 0;
  auto check = [&](EstimateResponse resp) {
    ASSERT_EQ(resp.estimates.size(), ts.size());
    for (size_t i = 0; i < ts.size(); ++i) {
      // Same bytes on every replica => the answer does not depend on which
      // replica computed it.
      EXPECT_EQ(resp.estimates[i], reference.estimates[i]);
    }
    ++completed;
  };

  for (size_t i = 0; i < kBefore; ++i) check(reg.Submit(make_req()).get());

  // Kill the primary with a batch in flight; every future must still
  // complete exactly once, successfully (std::promise aborts on a double
  // set, so "exactly once" is structurally enforced).
  std::vector<std::future<EstimateResponse>> inflight;
  for (size_t i = 0; i < kInflight; ++i) {
    inflight.push_back(reg.Submit(make_req()));
  }
  node.reset();  // Connection drops; unanswered requests surface as kIoError
                 // inside the router and retry on the local replica.
  for (auto& fut : inflight) check(fut.get());

  for (size_t i = 0; i < kAfter; ++i) check(reg.Submit(make_req()).get());

  EXPECT_EQ(completed, kBefore + kInflight + kAfter);
  EXPECT_NE(reg.slot_health(1), ShardHealth::kHealthy)
      << "dead replica still marked healthy";
}

TEST_F(FleetTest, CrashedReplicaRejoinsAndServesBitIdenticalAfterResync) {
  auto node = std::make_unique<ShardNode>(NodeConfig());
  ASSERT_TRUE(node->status().ok());
  uint16_t port = node->port();

  ShardedRegistry reg(FleetConfig(port));
  ASSERT_TRUE(WaitForHealth(reg, 1, ShardHealth::kHealthy));

  // LOCAL-primary route: publishing keeps working while the remote is down
  // (the primary answers; the dead secondary is repaired by re-sync).
  std::string route = RouteOwnedBy(reg, 0);
  ASSERT_TRUE(reg.PublishFromBytes(route, *bytes_, "fleet test").ok());

  std::vector<float> q = Query();
  std::vector<float> ts = SortedThresholds(7);
  EstimateRequest req = EstimateRequest::Sweep(q.data(), kDim, ts, route);
  EstimateResponse reference = reg.Submit(req).get();

  // Crash the node, then run a publish storm while it is down: every
  // publish must succeed (local primary) and the retained bytes stay the
  // re-sync source of truth.
  node.reset();
  for (int i = 0; i < 3; ++i) {
    auto v = reg.PublishFromBytes(route, *bytes_, "storm");
    ASSERT_TRUE(v.ok()) << v.status().ToString();
  }

  // Restart on the same port; the health loop must probe, re-sync the
  // route, reconnect, and mark the slot healthy again.
  node = std::make_unique<ShardNode>(NodeConfig(port));
  ASSERT_TRUE(node->status().ok()) << node->status().ToString();
  ASSERT_TRUE(WaitForHealth(reg, 1, ShardHealth::kHealthy))
      << "restarted node was not re-admitted";

  // Ask the REBORN node directly (bypassing the router) — after re-sync it
  // must hold the model and answer bit-identically to the local replica.
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", node->port()).ok());
  client.set_recv_timeout_ms(2000);
  auto direct = client.Roundtrip(req);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  ASSERT_EQ(direct.ValueOrDie().estimates.size(), ts.size());
  for (size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(direct.ValueOrDie().estimates[i], reference.estimates[i]) << i;
  }
}

TEST(TransferAssemblerLimits, HostileAnnouncementsAreTypedRejections) {
  TransferAssembler a;
  // A 2^64-1 announced size must be rejected BEFORE any allocation sized by
  // it — an unchecked buf_.reserve would throw std::length_error out of the
  // frontend loop thread and terminate the whole serving process.
  util::Status huge =
      a.Begin("r", std::numeric_limits<uint64_t>::max(), 1);
  ASSERT_FALSE(huge.ok());
  EXPECT_NE(huge.message().find("exceeds"), std::string::npos);
  EXPECT_FALSE(a.active());
  // More frames than bytes cannot come from a real sender (frames are
  // non-empty except the single frame of an empty payload).
  EXPECT_FALSE(a.Begin("r", 4, 6).ok());
  EXPECT_FALSE(a.active());
  // The ceiling is configurable; the boundary is accepted, one past is not.
  a.set_max_bytes(16);
  EXPECT_TRUE(a.Begin("r", 16, 1).ok());
  EXPECT_FALSE(a.Begin("r", 17, 1).ok());
}

TEST_F(FleetTest, HostileTransferOverWireGetsErrorReplyAndNodeSurvives) {
  ShardNode node(NodeConfig());
  ASSERT_TRUE(node.status().ok()) << node.status().ToString();

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", node.port()).ok());
  client.set_recv_timeout_ms(2000);
  // One hostile admin line from any TCP client: the reply must be a typed
  // error, not a dead process.
  ASSERT_TRUE(client
                  .SendRaw("{\"cmd\":\"xfer_begin\",\"model\":\"r\","
                           "\"size\":18446744073709551615,\"frames\":1}\n")
                  .ok());
  auto reply = client.ReadLine();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  util::Status st = ParseAckLine(reply.ValueOrDie());
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("exceeds"), std::string::npos);

  // The same connection (and the node) keeps serving: a real transfer then
  // succeeds end to end.
  uint64_t version = 0;
  util::Status sent = SendModelState(&client, "m", *bytes_, &version);
  ASSERT_TRUE(sent.ok()) << sent.ToString();
  EXPECT_GE(version, 1u);
}

/// Minimal non-SelNetCt estimator: it cannot serialize for state transfer,
/// so Publish replicates it to local slots only.
class ConstantEstimator : public eval::Estimator {
 public:
  explicit ConstantEstimator(float value) : value_(value) {}
  std::string Name() const override { return "Constant"; }
  bool IsConsistent() const override { return true; }
  void Fit(const eval::TrainContext&) override {}
  tensor::Matrix Predict(const tensor::Matrix& x,
                         const tensor::Matrix&) override {
    tensor::Matrix y(x.rows(), 1);
    for (size_t i = 0; i < x.rows(); ++i) y(i, 0) = value_;
    return y;
  }

 private:
  float value_;
};

TEST_F(FleetTest, LocalOnlyRouteWithRemotePrimaryFailsOverToLocalReplica) {
  ShardNode node(NodeConfig());
  ASSERT_TRUE(node.status().ok());
  ShardedRegistry reg(FleetConfig(node.port()));
  ASSERT_TRUE(WaitForHealth(reg, 1, ShardHealth::kHealthy));

  // Primary on the REMOTE slot, but the model cannot ship there (not a
  // SelNetCt) — it lives on the local replica only.
  std::string route = RouteOwnedBy(reg, 1);
  uint64_t version =
      reg.Publish(route, std::make_shared<ConstantEstimator>(0.25f));
  // The publish reached the local replica; returning the primary's 0 would
  // make success indistinguishable from total failure.
  EXPECT_GE(version, 1u);

  // The remote primary answers a typed not_found; the failover chain must
  // fall through to the local replica instead of failing the request.
  std::vector<float> q = Query();
  EstimateResponse resp =
      reg.Submit(EstimateRequest::Point(q.data(), kDim, wl_->tmax * 0.5f,
                                        route))
          .get();
  ASSERT_EQ(resp.estimates.size(), 1u);
  EXPECT_EQ(resp.estimates[0], 0.25f);
  // A replica that answered (promptly) that it lacks the route is healthy —
  // not_found must not tear down its data connection.
  EXPECT_EQ(reg.slot_health(1), ShardHealth::kHealthy);
}

TEST_F(FleetTest, HealthStateMachineAdmitsLateStartingNode) {
  // Reserve a port, then close the listener so the registry's first probes
  // hit connection-refused: the slot must start dead, not healthy.
  uint16_t port = 0;
  {
    util::TcpListener probe;
    ASSERT_TRUE(probe.Listen("127.0.0.1", 0).ok());
    port = probe.port();
  }

  ShardedRegistry reg(FleetConfig(port));
  EXPECT_NE(reg.slot_health(1), ShardHealth::kHealthy);

  std::string route = RouteOwnedBy(reg, 1);  // Remote-primary route.
  ASSERT_TRUE(reg.PublishFromBytes(route, *bytes_, "fleet test").ok())
      << "publish must succeed through the surviving replica";

  // Traffic before the node exists: served by the local replica.
  std::vector<float> q = Query();
  std::vector<float> ts = SortedThresholds(4);
  EstimateRequest req = EstimateRequest::Sweep(q.data(), kDim, ts, route);
  EstimateResponse before = reg.Submit(req).get();
  ASSERT_EQ(before.estimates.size(), ts.size());

  // Node comes up late; the health loop admits it AND ships the route's
  // bytes before marking it healthy.
  ShardNode node(NodeConfig(port));
  ASSERT_TRUE(node.status().ok()) << node.status().ToString();
  ASSERT_TRUE(WaitForHealth(reg, 1, ShardHealth::kHealthy));

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", node.port()).ok());
  client.set_recv_timeout_ms(2000);
  auto direct = client.Roundtrip(req);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  for (size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(direct.ValueOrDie().estimates[i], before.estimates[i]) << i;
  }
}

TEST_F(FleetTest, TracedRemoteRequestMergesRemoteStagesIntoCallerTrace) {
  ShardNode node(NodeConfig());
  ASSERT_TRUE(node.status().ok());
  ShardedRegistry reg(FleetConfig(node.port()));
  ASSERT_TRUE(WaitForHealth(reg, 1, ShardHealth::kHealthy));

  std::string route = RouteOwnedBy(reg, 1);  // Remote-primary route.
  ASSERT_TRUE(reg.PublishFromBytes(route, *bytes_, "fleet test").ok());

  std::vector<float> q = Query();
  std::vector<float> ts = SortedThresholds(5);
  EstimateRequest req = EstimateRequest::Sweep(q.data(), kDim, ts, route);
  auto trace = std::make_shared<RequestTrace>();
  req.trace = trace;

  EstimateResponse resp = reg.Submit(std::move(req)).get();
  ASSERT_EQ(resp.estimates.size(), ts.size());
  // The remote's stage block is consumed by the trace merge, never leaked to
  // the caller's response.
  EXPECT_TRUE(resp.stage_ms.empty());

  SpanRecord span = trace->Finish(route, 0);
  double remote_queue = span.stage_ms[size_t(Stage::kRemoteQueue)];
  double remote_predict = span.stage_ms[size_t(Stage::kRemotePredict)];
  double remote_wire = span.stage_ms[size_t(Stage::kRemoteWire)];
  // The remote actually measured its stages (the trace flag crossed the
  // wire), and the caller-observed hop bounds the remote's own share.
  EXPECT_GT(remote_queue, 0.0);
  EXPECT_GT(remote_predict, 0.0);
  EXPECT_GT(remote_wire, 0.0);
  EXPECT_LE(remote_queue + remote_predict, remote_wire + 1e-9);
}

TEST_F(FleetTest, KilledPrimaryBumpsFailoverCountersAndEventRing) {
  auto node = std::make_unique<ShardNode>(NodeConfig());
  ASSERT_TRUE(node->status().ok());
  uint16_t port = node->port();

  ShardedRegistry reg(FleetConfig(port));
  ASSERT_TRUE(WaitForHealth(reg, 1, ShardHealth::kHealthy));
  std::string endpoint = "127.0.0.1:" + std::to_string(port);

  std::string route = RouteOwnedBy(reg, 1);  // Traffic rides the wire.
  ASSERT_TRUE(reg.PublishFromBytes(route, *bytes_, "fleet test").ok());

  std::vector<float> q = Query();
  std::vector<float> ts = SortedThresholds(5);
  auto make_req = [&] {
    return EstimateRequest::Sweep(q.data(), kDim, ts, route);
  };
  EstimateResponse reference = reg.Submit(make_req()).get();
  ASSERT_EQ(reference.estimates.size(), ts.size());

  util::MetricsRegistry& metrics = reg.metrics();
  uint64_t successes_before =
      metrics.CounterTotal("selnet_failover_successes_total");

  // Kill the primary with requests in flight: every query must still answer
  // (zero client-visible failures). The in-flight batch may legitimately
  // finish before the kill lands, so the deterministic counter check rides
  // on the POST-kill submits below, which must walk past the dead primary.
  std::vector<std::future<EstimateResponse>> inflight;
  for (int i = 0; i < 8; ++i) inflight.push_back(reg.Submit(make_req()));
  node.reset();
  size_t completed = 0;
  auto check = [&](EstimateResponse resp) {
    ASSERT_EQ(resp.estimates.size(), ts.size());
    for (size_t i = 0; i < ts.size(); ++i) {
      EXPECT_EQ(resp.estimates[i], reference.estimates[i]);
    }
    ++completed;
  };
  for (auto& fut : inflight) check(fut.get());  // get() throws on a loss.
  for (int i = 0; i < 4; ++i) check(reg.Submit(make_req()).get());
  EXPECT_EQ(completed, 12u);

  uint64_t attempts = metrics.CounterTotal("selnet_failover_attempts_total");
  uint64_t successes = metrics.CounterTotal("selnet_failover_successes_total");
  uint64_t walked =
      metrics.CounterTotal("selnet_failover_replicas_walked_total");
  EXPECT_GT(attempts, 0u) << "replica failures must be counted by reason";
  EXPECT_GT(successes, successes_before)
      << "requests that answered on a later replica must count as rescued";
  EXPECT_GE(walked, successes - successes_before)
      << "each rescue walked at least one replica";

  // Let the health loop actually observe the death (probe failure) before
  // the node returns; restarting faster legitimately short-circuits the
  // machine to suspect -> resyncing, which is not what this test is about.
  ASSERT_TRUE(WaitForHealth(reg, 1, ShardHealth::kDead));

  // Restart on the same port and wait for re-admission: the flight recorder
  // must show the full lifecycle for this endpoint, in order, exactly
  // suspect -> dead -> resyncing -> healthy after the kill.
  node = std::make_unique<ShardNode>(NodeConfig(port));
  ASSERT_TRUE(node->status().ok());
  ASSERT_TRUE(WaitForHealth(reg, 1, ShardHealth::kHealthy));

  std::vector<util::Event> events = reg.events().Snapshot();
  std::vector<std::pair<std::string, std::string>> health_path;
  for (const util::Event& e : events) {
    if (e.kind == "health" && e.target == endpoint) {
      health_path.emplace_back(e.from, e.to);
    }
  }
  // Startup admission contributes dead->resyncing->healthy; the kill+rejoin
  // is the last four transitions.
  ASSERT_GE(health_path.size(), 4u);
  std::vector<std::pair<std::string, std::string>> tail(
      health_path.end() - 4, health_path.end());
  std::vector<std::pair<std::string, std::string>> want = {
      {"healthy", "suspect"},
      {"suspect", "dead"},
      {"dead", "resyncing"},
      {"resyncing", "healthy"},
  };
  EXPECT_EQ(tail, want);
  // Every ring transition is also a counter sample — the two views of the
  // same machine must agree.
  EXPECT_GE(metrics.CounterTotal("selnet_health_transitions_total"),
            health_path.size());
}

TEST_F(FleetTest, ScrapeMergePoolsRemoteHistogramsAndStampsSlots) {
  ShardNode node(NodeConfig());
  ASSERT_TRUE(node.status().ok());
  ShardedConfig cfg = FleetConfig(node.port());
  cfg.node_id = "coordinator";
  cfg.scrape_interval_ms = 0.0;  // Manual ScrapeNow only: deterministic.
  ShardedRegistry reg(cfg);
  ASSERT_TRUE(WaitForHealth(reg, 1, ShardHealth::kHealthy));

  std::string remote_route = RouteOwnedBy(reg, 1);
  std::string local_route = RouteOwnedBy(reg, 0);
  ASSERT_TRUE(reg.PublishFromBytes(remote_route, *bytes_, "fleet").ok());
  ASSERT_TRUE(reg.PublishFromBytes(local_route, *bytes_, "fleet").ok());

  std::vector<float> q = Query();
  std::vector<float> ts = SortedThresholds(5);
  constexpr size_t kRemoteReqs = 6, kLocalReqs = 4;
  for (size_t i = 0; i < kRemoteReqs; ++i) {
    reg.Submit(EstimateRequest::Sweep(q.data(), kDim, ts, remote_route)).get();
  }
  for (size_t i = 0; i < kLocalReqs; ++i) {
    reg.Submit(EstimateRequest::Sweep(q.data(), kDim, ts, local_route)).get();
  }

  // Ground truth: scrape the node directly, bypassing the registry.
  NetClient direct;
  ASSERT_TRUE(direct.Connect("127.0.0.1", node.port()).ok());
  direct.set_recv_timeout_ms(2000);
  auto remote_res = direct.StatsWire();
  ASSERT_TRUE(remote_res.ok()) << remote_res.status().ToString();
  const StatsSnapshot& remote_snap = remote_res.ValueOrDie();
  EXPECT_GT(remote_snap.requests, 0u);
  EXPECT_GT(remote_snap.latency_hist.count, 0u);
  EXPECT_FALSE(remote_snap.node_id.empty());
  EXPECT_GT(remote_snap.uptime_s, 0.0);

  uint64_t local_requests = 0, local_latency = 0;
  for (const StatsSnapshot& s : reg.ShardSnapshots()) {
    local_requests += s.requests;
    local_latency += s.latency_hist.count;
  }
  EXPECT_GT(local_requests, 0u);

  reg.ScrapeNow();
  StatsSnapshot agg = reg.AggregateSnapshot();
  // The fleet view pools local + remote: counters sum, and the latency
  // histogram is the bucket-merge of both sides (true pooled percentiles,
  // not a worst-shard guess). Traffic has stopped, so the direct scrape and
  // the registry's own agree exactly.
  EXPECT_EQ(agg.requests, local_requests + remote_snap.requests);
  EXPECT_EQ(agg.latency_hist.count, local_latency + remote_snap.latency_hist.count);
  EXPECT_EQ(agg.node_id, "coordinator");

  ASSERT_EQ(agg.slots.size(), 2u);
  EXPECT_EQ(agg.slots[0].kind, "local");
  EXPECT_EQ(agg.slots[1].kind, "remote");
  EXPECT_EQ(agg.slots[1].endpoint,
            "127.0.0.1:" + std::to_string(node.port()));
  EXPECT_EQ(agg.slots[1].health, "healthy");
  // The remote self-reports its identity; the scrape carried it over.
  EXPECT_EQ(agg.slots[1].node_id, remote_snap.node_id);
  EXPECT_GE(agg.slots[1].scrape_age_s, 0.0);

  // A scrape past its TTL is dropped from the merge (stale truth is worse
  // than missing truth), though the slot row still shows the endpoint.
  ShardedConfig stale_cfg = FleetConfig(node.port());
  stale_cfg.scrape_interval_ms = 0.0;
  stale_cfg.scrape_ttl_ms = 0.001;
  ShardedRegistry stale(stale_cfg);
  ASSERT_TRUE(WaitForHealth(stale, 1, ShardHealth::kHealthy));
  stale.ScrapeNow();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  StatsSnapshot dropped = stale.AggregateSnapshot();
  EXPECT_EQ(dropped.requests, 0u)
      << "an expired scrape must not leak remote counters into the merge";
  ASSERT_EQ(dropped.slots.size(), 2u);
  EXPECT_EQ(dropped.slots[1].health, "healthy");
}

TEST_F(FleetTest, MetricsAndEventsServeOverTheWire) {
  ShardNode node(NodeConfig());
  ASSERT_TRUE(node.status().ok());
  ShardedConfig cfg = FleetConfig(node.port());
  cfg.node_id = "coordinator";
  ShardedRegistry reg(cfg);
  ASSERT_TRUE(WaitForHealth(reg, 1, ShardHealth::kHealthy));

  // Local-primary route: the submit lands on the coordinator's own shard, so
  // the aggregate carries it without waiting for a scrape tick.
  std::string route = RouteOwnedBy(reg, 0);
  ASSERT_TRUE(reg.PublishFromBytes(route, *bytes_, "fleet").ok());
  std::vector<float> q = Query();
  std::vector<float> ts = SortedThresholds(5);
  reg.Submit(EstimateRequest::Sweep(q.data(), kDim, ts, route)).get();

  FrontendConfig fcfg;
  fcfg.drain_timeout_s = 0.2;
  NetFrontend frontend(fcfg, &reg);
  ASSERT_TRUE(frontend.status().ok()) << frontend.status().ToString();

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", frontend.port()).ok());
  client.set_recv_timeout_ms(2000);

  // {"cmd":"metrics"}: one lint-clean Prometheus exposition combining the
  // snapshot-derived series, the frontend's own, and the registry's.
  auto metrics = client.Metrics(/*tag=*/7);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  const std::string& text = metrics.ValueOrDie();
  util::Status lint = util::LintExposition(text);
  EXPECT_TRUE(lint.ok()) << lint.ToString() << "\n" << text;
  for (const char* needle :
       {"selnet_requests_total", "selnet_slot_health",
        "selnet_frontend_admin_requests_total",
        "selnet_health_transitions_total", "selnet_publish_replica_total",
        "selnet_uptime_seconds"}) {
    EXPECT_NE(text.find(needle), std::string::npos)
        << "metrics text missing " << needle;
  }
  EXPECT_NE(text.find("node=\"coordinator\""), std::string::npos)
      << "slot rows must carry the coordinator identity";

  // {"cmd":"events"}: the flight recorder, as a JSON array — startup
  // admission of the remote is already on it.
  auto events_reply = client.Admin("events", /*tag=*/8);
  ASSERT_TRUE(events_reply.ok()) << events_reply.status().ToString();
  EXPECT_NE(events_reply.ValueOrDie().find("\"kind\":\"health\""),
            std::string::npos);
  EXPECT_NE(events_reply.ValueOrDie().find("\"to\":\"healthy\""),
            std::string::npos);

  // {"cmd":"stats_wire"} against the coordinator frontend round-trips the
  // aggregate (this is what a higher-tier scraper would consume).
  auto wire_snap = client.StatsWire(/*tag=*/9);
  ASSERT_TRUE(wire_snap.ok()) << wire_snap.status().ToString();
  EXPECT_GE(wire_snap.ValueOrDie().requests, 1u);
  EXPECT_EQ(wire_snap.ValueOrDie().node_id, "coordinator");
}

}  // namespace
}  // namespace selnet::serve
