#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>

#include "data/synthetic.h"
#include "index/cover_tree.h"
#include "index/kmeans.h"
#include "index/partitioner.h"
#include "tensor/blas.h"

namespace selnet::idx {
namespace {

using data::Metric;
using tensor::Matrix;

Matrix RandomPoints(size_t n, size_t dim, uint64_t seed) {
  util::Rng rng(seed);
  return Matrix::Gaussian(n, dim, &rng);
}

struct TreeCase {
  size_t n;
  size_t dim;
  uint64_t seed;
};

class CoverTreeProperty : public ::testing::TestWithParam<TreeCase> {};

TEST_P(CoverTreeProperty, InvariantsHoldAfterBuild) {
  TreeCase c = GetParam();
  Matrix pts = RandomPoints(c.n, c.dim, c.seed);
  CoverTree tree = CoverTree::Build(pts, Metric::kEuclidean);
  EXPECT_EQ(tree.size(), c.n);
  EXPECT_TRUE(tree.ValidateInvariants().ok());
}

TEST_P(CoverTreeProperty, RangeCountMatchesBruteForce) {
  TreeCase c = GetParam();
  Matrix pts = RandomPoints(c.n, c.dim, c.seed);
  CoverTree tree = CoverTree::Build(pts, Metric::kEuclidean);
  util::Rng rng(c.seed + 1);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix q = Matrix::Gaussian(1, c.dim, &rng);
    float t = static_cast<float>(rng.Uniform(0.1, 2.5));
    size_t brute = 0;
    for (size_t i = 0; i < pts.rows(); ++i) {
      if (data::Distance(q.row(0), pts.row(i), c.dim, Metric::kEuclidean) <= t) {
        ++brute;
      }
    }
    EXPECT_EQ(tree.RangeCount(q.row(0), t), brute) << "trial " << trial;
    EXPECT_EQ(tree.RangeQuery(q.row(0), t).size(), brute);
  }
}

TEST_P(CoverTreeProperty, NearestMatchesBruteForce) {
  TreeCase c = GetParam();
  Matrix pts = RandomPoints(c.n, c.dim, c.seed);
  CoverTree tree = CoverTree::Build(pts, Metric::kEuclidean);
  util::Rng rng(c.seed + 2);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix q = Matrix::Gaussian(1, c.dim, &rng);
    float best = std::numeric_limits<float>::max();
    for (size_t i = 0; i < pts.rows(); ++i) {
      best = std::min(best, data::Distance(q.row(0), pts.row(i), c.dim,
                                           Metric::kEuclidean));
    }
    size_t got = tree.Nearest(q.row(0));
    float got_d = data::Distance(q.row(0), pts.row(got), c.dim,
                                 Metric::kEuclidean);
    EXPECT_NEAR(got_d, best, 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CoverTreeProperty,
                         ::testing::Values(TreeCase{50, 3, 1},
                                           TreeCase{300, 8, 2},
                                           TreeCase{1000, 4, 3},
                                           TreeCase{200, 16, 4},
                                           TreeCase{1, 5, 5},
                                           TreeCase{2, 2, 6}));

TEST(CoverTreeTest, RangeQueryIdsAreCorrectSet) {
  Matrix pts = RandomPoints(200, 4, 9);
  CoverTree tree = CoverTree::Build(pts, Metric::kEuclidean);
  Matrix q = RandomPoints(1, 4, 10);
  float t = 1.5f;
  std::set<size_t> expect;
  for (size_t i = 0; i < pts.rows(); ++i) {
    if (data::Distance(q.row(0), pts.row(i), 4, Metric::kEuclidean) <= t) {
      expect.insert(i);
    }
  }
  auto ids = tree.RangeQuery(q.row(0), t);
  std::set<size_t> got(ids.begin(), ids.end());
  EXPECT_EQ(got, expect);
}

TEST(CoverTreeTest, PartitionCoversAllPointsDisjointly) {
  Matrix pts = RandomPoints(500, 5, 11);
  CoverTree tree = CoverTree::Build(pts, Metric::kEuclidean);
  std::vector<Region> regions = tree.PartitionByRatio(0.1);
  EXPECT_GT(regions.size(), 1u);
  std::set<size_t> seen;
  for (const auto& r : regions) {
    for (size_t id : r.members) {
      EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
    }
  }
  EXPECT_EQ(seen.size(), 500u);
}

TEST(CoverTreeTest, RegionRadiiBoundMembers) {
  Matrix pts = RandomPoints(300, 4, 12);
  CoverTree tree = CoverTree::Build(pts, Metric::kEuclidean);
  std::vector<Region> regions = tree.PartitionByRatio(0.15);
  for (const auto& r : regions) {
    for (size_t id : r.members) {
      float d = data::Distance(r.center.data(), pts.row(id), 4,
                               Metric::kEuclidean);
      EXPECT_LE(d, r.radius + 1e-4f);
    }
  }
}

TEST(KMeansTest, AssignsEveryPointToNearestCentroid) {
  Matrix pts = RandomPoints(200, 3, 13);
  KMeansResult km = KMeans(pts, 4, 20, 7);
  EXPECT_EQ(km.assignment.size(), 200u);
  for (size_t i = 0; i < pts.rows(); ++i) {
    float assigned = tensor::SquaredL2(pts.row(i),
                                       km.centroids.row(km.assignment[i]), 3);
    for (size_t c = 0; c < 4; ++c) {
      float d = tensor::SquaredL2(pts.row(i), km.centroids.row(c), 3);
      EXPECT_GE(d + 1e-4f, assigned);
    }
  }
}

TEST(KMeansTest, SeparatedClustersRecovered) {
  // Two blobs far apart: k-means must split them perfectly.
  util::Rng rng(14);
  Matrix pts(100, 2);
  for (size_t i = 0; i < 50; ++i) {
    pts(i, 0) = static_cast<float>(rng.Normal(0.0, 0.1));
    pts(i, 1) = static_cast<float>(rng.Normal(0.0, 0.1));
  }
  for (size_t i = 50; i < 100; ++i) {
    pts(i, 0) = static_cast<float>(rng.Normal(10.0, 0.1));
    pts(i, 1) = static_cast<float>(rng.Normal(10.0, 0.1));
  }
  KMeansResult km = KMeans(pts, 2, 30, 3);
  std::set<size_t> first_half;
  for (size_t i = 0; i < 50; ++i) first_half.insert(km.assignment[i]);
  std::set<size_t> second_half;
  for (size_t i = 50; i < 100; ++i) second_half.insert(km.assignment[i]);
  EXPECT_EQ(first_half.size(), 1u);
  EXPECT_EQ(second_half.size(), 1u);
  EXPECT_NE(*first_half.begin(), *second_half.begin());
}

TEST(GreedyMergeTest, BalancesClusterLoads) {
  std::vector<Region> regions(10);
  for (size_t i = 0; i < 10; ++i) {
    regions[i].members.resize(10 * (i + 1));  // sizes 10..100
  }
  std::vector<size_t> cluster_of = GreedyBalancedMerge(regions, 3);
  std::vector<size_t> load(3, 0);
  for (size_t i = 0; i < 10; ++i) load[cluster_of[i]] += regions[i].members.size();
  size_t total = 10 + 20 + 30 + 40 + 50 + 60 + 70 + 80 + 90 + 100;
  size_t ideal = total / 3;
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(static_cast<double>(load[c]), static_cast<double>(ideal),
                static_cast<double>(ideal) * 0.35);
  }
}

class PartitioningProperty
    : public ::testing::TestWithParam<std::tuple<PartitionMethod, Metric>> {};

TEST_P(PartitioningProperty, CoversDataAndIndicatorIsSound) {
  auto [method, metric] = GetParam();
  data::SyntheticSpec spec;
  spec.n = 600;
  spec.dim = 6;
  spec.num_clusters = 6;
  spec.normalize = (metric == Metric::kCosine);
  Matrix pts = data::GenerateMixture(spec);
  PartitionSpec pspec;
  pspec.method = method;
  pspec.k = 3;
  pspec.ratio = 0.1;
  Partitioning part = BuildPartitioning(pts, metric, pspec);

  // Coverage: members of all clusters partition [0, n).
  std::set<size_t> seen;
  for (const auto& cluster : part.cluster_members) {
    for (size_t id : cluster) EXPECT_TRUE(seen.insert(id).second);
  }
  EXPECT_EQ(seen.size(), 600u);
  EXPECT_LE(part.num_clusters(), 3u);

  // Soundness of fc: any cluster containing a point within the ball must be
  // flagged (no false negatives; false positives are allowed).
  util::Rng rng(15);
  for (int trial = 0; trial < 20; ++trial) {
    size_t qi = static_cast<size_t>(rng.UniformInt(0, 599));
    float t = static_cast<float>(metric == Metric::kCosine
                                     ? rng.Uniform(0.005, 0.3)
                                     : rng.Uniform(0.1, 1.0));
    std::vector<uint8_t> fc = part.Intersects(pts.row(qi), t);
    for (size_t c = 0; c < part.num_clusters(); ++c) {
      size_t inside = 0;
      for (size_t id : part.cluster_members[c]) {
        if (data::Distance(pts.row(qi), pts.row(id), 6, metric) <= t) ++inside;
      }
      if (inside > 0) {
        EXPECT_EQ(fc[c], 1) << "false negative in cluster " << c;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndMetrics, PartitioningProperty,
    ::testing::Combine(::testing::Values(PartitionMethod::kCoverTree,
                                         PartitionMethod::kRandom,
                                         PartitionMethod::kKMeans),
                       ::testing::Values(Metric::kEuclidean, Metric::kCosine)));

TEST(PartitioningTest, AssignObjectRoutesToExistingCluster) {
  Matrix pts = RandomPoints(300, 4, 16);
  PartitionSpec pspec;
  pspec.k = 3;
  Partitioning part = BuildPartitioning(pts, Metric::kEuclidean, pspec);
  util::Rng rng(17);
  Matrix nv = Matrix::Gaussian(1, 4, &rng);
  size_t c = part.AssignObject(nv.row(0));
  EXPECT_LT(c, part.num_clusters());
  // After assignment the indicator must flag that cluster for a tiny ball
  // around the new object (its region radius was grown to reach it).
  std::vector<uint8_t> fc = part.Intersects(nv.row(0), 1e-5f);
  EXPECT_EQ(fc[c], 1);
}

TEST(PartitioningTest, MethodNames) {
  EXPECT_STREQ(PartitionMethodName(PartitionMethod::kCoverTree), "CT");
  EXPECT_STREQ(PartitionMethodName(PartitionMethod::kRandom), "RP");
  EXPECT_STREQ(PartitionMethodName(PartitionMethod::kKMeans), "KM");
}

}  // namespace
}  // namespace selnet::idx
