#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "baselines/kde.h"
#include "core/model_io.h"
#include "core/selnet_partitioned.h"
#include "data/synthetic.h"
#include "serve/admission.h"
#include "serve/batch_scheduler.h"
#include "serve/estimate_cache.h"
#include "serve/model_registry.h"
#include "serve/request.h"
#include "serve/servable.h"
#include "serve/serve_stats.h"
#include "serve/server.h"
#include "serve/update_pipeline.h"
#include "util/stopwatch.h"

namespace selnet::serve {
namespace {

using tensor::Matrix;

// ------------------------------------------------------------------ cache ---

TEST(EstimateCacheTest, MissThenHit) {
  EstimateCache cache;
  float x[3] = {0.1f, 0.2f, 0.3f};
  uint64_t key = cache.MakeKey(1, x, 3, 0.5f);
  float v = 0.0f;
  EXPECT_FALSE(cache.Lookup(key, &v));
  cache.Insert(key, 42.0f);
  ASSERT_TRUE(cache.Lookup(key, &v));
  EXPECT_FLOAT_EQ(v, 42.0f);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(EstimateCacheTest, QuantizationCollapsesNearbyInputs) {
  CacheConfig cfg;
  cfg.query_quantum = 1e-3f;
  cfg.threshold_quantum = 1e-3f;
  EstimateCache cache(cfg);
  float a[2] = {0.5f, 0.5f};
  float b[2] = {0.5f + 1e-5f, 0.5f};  // Within one quantum of a.
  float c[2] = {0.6f, 0.5f};          // Far from a.
  EXPECT_EQ(cache.MakeKey(1, a, 2, 0.3f), cache.MakeKey(1, b, 2, 0.3f));
  EXPECT_NE(cache.MakeKey(1, a, 2, 0.3f), cache.MakeKey(1, c, 2, 0.3f));
}

TEST(EstimateCacheTest, ModelVersionChangesKey) {
  EstimateCache cache;
  float x[2] = {0.5f, 0.5f};
  EXPECT_NE(cache.MakeKey(1, x, 2, 0.3f), cache.MakeKey(2, x, 2, 0.3f));
}

TEST(EstimateCacheTest, CurveEntriesRoundTrip) {
  EstimateCache cache;
  float x[2] = {0.5f, 0.5f};
  uint64_t key = cache.MakeCurveKey(7, x, 2);
  EXPECT_NE(key, cache.MakeCurveKey(8, x, 2));  // Version-keyed.
  CurveEntry entry;
  EXPECT_FALSE(cache.LookupCurve(key, &entry));
  cache.InsertCurve(key, CurveEntry{{0.0f, 0.5f, 1.0f}, {0.0f, 2.0f, 3.0f}});
  ASSERT_TRUE(cache.LookupCurve(key, &entry));
  EXPECT_EQ(entry.tau, (std::vector<float>{0.0f, 0.5f, 1.0f}));
  EXPECT_EQ(entry.p, (std::vector<float>{0.0f, 2.0f, 3.0f}));
  EXPECT_EQ(cache.curve_hits(), 1u);
  EXPECT_EQ(cache.curve_misses(), 1u);
  EXPECT_EQ(cache.curve_size(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.curve_size(), 0u);
}

TEST(EstimateCacheTest, CurveTableEvictsIndependently) {
  CacheConfig cfg;
  cfg.curve_capacity = 2;
  cfg.shards = 1;
  EstimateCache cache(cfg);
  float x[1];
  for (int i = 0; i < 3; ++i) {
    x[0] = float(i);
    cache.InsertCurve(cache.MakeCurveKey(1, x, 1),
                      CurveEntry{{0.0f, 1.0f}, {0.0f, float(i)}});
  }
  EXPECT_EQ(cache.curve_size(), 2u);  // Oldest curve evicted.
  CurveEntry entry;
  x[0] = 0.0f;
  EXPECT_FALSE(cache.LookupCurve(cache.MakeCurveKey(1, x, 1), &entry));
  x[0] = 2.0f;
  EXPECT_TRUE(cache.LookupCurve(cache.MakeCurveKey(1, x, 1), &entry));
  // The scalar table is untouched by curve inserts.
  EXPECT_EQ(cache.size(), 0u);
}

TEST(EstimateCacheTest, EvictsLeastRecentlyUsed) {
  CacheConfig cfg;
  cfg.capacity = 4;
  cfg.shards = 1;  // One shard so global LRU order is deterministic.
  EstimateCache cache(cfg);
  float x[1];
  std::vector<uint64_t> keys;
  for (int i = 0; i < 4; ++i) {
    x[0] = float(i);
    keys.push_back(cache.MakeKey(1, x, 1, 0.0f));
    cache.Insert(keys.back(), float(i));
  }
  // Touch key 0 so key 1 is now the LRU entry.
  float v = 0.0f;
  ASSERT_TRUE(cache.Lookup(keys[0], &v));
  x[0] = 99.0f;
  cache.Insert(cache.MakeKey(1, x, 1, 0.0f), 99.0f);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_TRUE(cache.Lookup(keys[0], &v));
  EXPECT_FALSE(cache.Lookup(keys[1], &v));  // Evicted.
  EXPECT_TRUE(cache.Lookup(keys[2], &v));
  EXPECT_TRUE(cache.Lookup(keys[3], &v));
}

TEST(EstimateCacheTest, ClearDropsEntries) {
  EstimateCache cache;
  float x[1] = {1.0f};
  uint64_t key = cache.MakeKey(1, x, 1, 0.0f);
  cache.Insert(key, 5.0f);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  float v = 0.0f;
  EXPECT_FALSE(cache.Lookup(key, &v));
}

TEST(EstimateCacheTest, ConcurrentInsertLookupIsSafe) {
  CacheConfig cfg;
  cfg.capacity = 256;
  EstimateCache cache(cfg);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      float x[1];
      for (int i = 0; i < 2000; ++i) {
        x[0] = float((t * 131 + i) % 512);
        uint64_t key = cache.MakeKey(1, x, 1, 0.0f);
        float v = 0.0f;
        if (!cache.Lookup(key, &v)) cache.Insert(key, x[0]);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(cache.size(), 256u);
  EXPECT_GT(cache.hits() + cache.misses(), 0u);
}

// --------------------------------------------------------------- registry ---

TEST(ModelRegistryTest, GetUnknownNameIsNotFound) {
  ModelRegistry registry;
  auto handle = registry.Get("nope");
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), util::StatusCode::kNotFound);
  EXPECT_EQ(registry.VersionOf("nope"), 0u);
}

TEST(ModelRegistryTest, PublishAssignsIncreasingVersions) {
  ModelRegistry registry;
  core::SelNetConfig cfg;
  cfg.input_dim = 4;
  cfg.tmax = 1.0f;
  uint64_t v1 = registry.Publish("a", std::make_shared<core::SelNetCt>(cfg));
  uint64_t v2 = registry.Publish("a", std::make_shared<core::SelNetCt>(cfg));
  uint64_t v3 = registry.Publish("b", std::make_shared<core::SelNetCt>(cfg));
  EXPECT_LT(v1, v2);
  EXPECT_LT(v2, v3);
  EXPECT_EQ(registry.VersionOf("a"), v2);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_TRUE(registry.Remove("b").ok());
  EXPECT_FALSE(registry.Remove("b").ok());
}

TEST(ModelRegistryTest, OldHandleSurvivesRepublish) {
  ModelRegistry registry;
  core::SelNetConfig cfg;
  cfg.input_dim = 4;
  cfg.tmax = 1.0f;
  registry.Publish("m", std::make_shared<core::SelNetCt>(cfg));
  auto old_handle = registry.Get("m");
  ASSERT_TRUE(old_handle.ok());
  registry.Publish("m", std::make_shared<core::SelNetCt>(cfg));
  // The old snapshot is still usable even though it was replaced.
  Matrix x(1, 4), t(1, 1);
  t(0, 0) = 0.5f;
  Matrix y = old_handle.ValueOrDie().model->Predict(x, t);
  EXPECT_TRUE(y.AllFinite());
  EXPECT_NE(old_handle.ValueOrDie().version, registry.VersionOf("m"));
}

TEST(ModelRegistryTest, PublishFromMissingFileFails) {
  ModelRegistry registry;
  auto result = registry.PublishFromFile("m", "/nonexistent/model.selm");
  ASSERT_FALSE(result.ok());
  // Satellite: the failing path must appear in the error message.
  EXPECT_NE(result.status().message().find("/nonexistent/model.selm"),
            std::string::npos);
}

TEST(ModelRegistryTest, ServesAnyEstimatorAndProbesSweepCapability) {
  ModelRegistry registry;
  core::SelNetConfig cfg;
  cfg.input_dim = 4;
  cfg.tmax = 1.0f;
  registry.Publish("selnet", std::make_shared<core::SelNetCt>(cfg));
  registry.Publish("kde", std::make_shared<bl::KdeEstimator>());
  auto selnet = registry.Get("selnet");
  auto kde = registry.Get("kde");
  ASSERT_TRUE(selnet.ok());
  ASSERT_TRUE(kde.ok());
  // The capability cast happens once at publish: SelNet exposes its control
  // points, the KDE baseline transparently lacks the fast path.
  EXPECT_TRUE(selnet.ValueOrDie().model.sweep_capable());
  EXPECT_FALSE(kde.ValueOrDie().model.sweep_capable());
  EXPECT_EQ(kde.ValueOrDie().model->Name(), "KDE");
}

// -------------------------------------------------------------- scheduler ---

// Deterministic stand-in for Predict: y_i = sum(x_i) + 10 * t_i.
Matrix FakePredictRows(const Matrix& x, const Matrix& t) {
  Matrix y(x.rows(), 1);
  for (size_t i = 0; i < x.rows(); ++i) {
    float sum = 0.0f;
    for (size_t j = 0; j < x.cols(); ++j) sum += x(i, j);
    y(i, 0) = sum + 10.0f * t(i, 0);
  }
  return y;
}

// Model-routed BatchFn over FakePredictRows (route ignored).
Matrix FakePredict(const std::string& /*model*/, const Matrix& x,
                   const Matrix& t) {
  return FakePredictRows(x, t);
}

TEST(BatchSchedulerTest, AnswersMatchUnbatchedComputation) {
  SchedulerConfig cfg;
  cfg.dim = 3;
  cfg.max_batch = 8;
  cfg.max_delay_ms = 1.0;
  BatchScheduler scheduler(cfg, FakePredict);
  std::vector<std::future<float>> futures;
  for (int i = 0; i < 50; ++i) {
    float x[3] = {float(i), float(i) * 0.5f, -float(i)};
    futures.push_back(scheduler.Submit(x, float(i) * 0.01f));
  }
  for (int i = 0; i < 50; ++i) {
    float expected = float(i) + float(i) * 0.5f - float(i) +
                     10.0f * float(i) * 0.01f;
    EXPECT_FLOAT_EQ(futures[i].get(), expected) << "request " << i;
  }
}

TEST(BatchSchedulerTest, CoalescesRequestsIntoFewerBatches) {
  SchedulerConfig cfg;
  cfg.dim = 2;
  cfg.max_batch = 16;
  cfg.max_delay_ms = 50.0;  // Large delay: batches close on max_batch.
  std::atomic<size_t> batches{0};
  BatchScheduler scheduler(
      cfg, [&](const std::string&, const Matrix& x, const Matrix& t) {
        batches.fetch_add(1);
        return FakePredictRows(x, t);
      });
  std::vector<std::future<float>> futures;
  for (int i = 0; i < 64; ++i) {
    float x[2] = {float(i), 0.0f};
    futures.push_back(scheduler.Submit(x, 0.0f));
  }
  scheduler.Drain();
  for (auto& f : futures) f.get();
  // 64 requests with max_batch 16 need at least 4 batches but far fewer
  // than 64 — the point of coalescing.
  EXPECT_GE(batches.load(), 4u);
  EXPECT_LE(batches.load(), 16u);
}

TEST(BatchSchedulerTest, MaxDelayFlushesPartialBatch) {
  SchedulerConfig cfg;
  cfg.dim = 1;
  cfg.max_batch = 1000;  // Never filled; only the delay can flush.
  cfg.max_delay_ms = 2.0;
  BatchScheduler scheduler(cfg, FakePredict);
  float x[1] = {1.5f};
  std::future<float> f = scheduler.Submit(x, 0.0f);
  EXPECT_EQ(f.wait_for(std::chrono::seconds(2)), std::future_status::ready);
  EXPECT_FLOAT_EQ(f.get(), 1.5f);
}

TEST(BatchSchedulerTest, CompletionHookSeesEveryRequest) {
  SchedulerConfig cfg;
  cfg.dim = 1;
  cfg.max_batch = 4;
  cfg.max_delay_ms = 1.0;
  std::atomic<uint64_t> tag_sum{0};
  std::atomic<size_t> completions{0};
  BatchScheduler scheduler(
      cfg, FakePredict,
      [&](uint64_t tag, float /*value*/, double latency_ms) {
        tag_sum.fetch_add(tag);
        completions.fetch_add(1);
        EXPECT_GE(latency_ms, 0.0);
      });
  std::vector<std::future<float>> futures;
  uint64_t expected_sum = 0;
  for (uint64_t i = 1; i <= 20; ++i) {
    float x[1] = {0.0f};
    futures.push_back(scheduler.Submit(x, 0.0f, i));
    expected_sum += i;
  }
  scheduler.Drain();
  EXPECT_EQ(completions.load(), 20u);
  EXPECT_EQ(tag_sum.load(), expected_sum);
}

TEST(BatchSchedulerTest, BatchFnExceptionPropagatesToFutures) {
  SchedulerConfig cfg;
  cfg.dim = 1;
  cfg.max_batch = 2;
  cfg.max_delay_ms = 1.0;
  BatchScheduler scheduler(
      cfg, [](const std::string&, const Matrix&, const Matrix&) -> Matrix {
        throw std::runtime_error("model exploded");
      });
  float x[1] = {0.0f};
  std::future<float> f = scheduler.Submit(x, 0.0f);
  scheduler.Drain();
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(BatchSchedulerTest, SubmitAfterShutdownFailsFuture) {
  SchedulerConfig cfg;
  cfg.dim = 1;
  BatchScheduler scheduler(cfg, FakePredict);
  scheduler.Shutdown();
  float x[1] = {0.0f};
  std::future<float> f = scheduler.Submit(x, 0.0f);
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(BatchSchedulerTest, RowsAreGroupedByModelRoute) {
  SchedulerConfig cfg;
  cfg.dim = 1;
  cfg.max_batch = 64;
  cfg.max_delay_ms = 20.0;  // One flush holding rows for both models.
  std::mutex mu;
  std::vector<std::pair<std::string, size_t>> calls;  // (model, rows).
  BatchScheduler scheduler(
      cfg, [&](const std::string& model, const Matrix& x, const Matrix& t) {
        {
          std::lock_guard<std::mutex> lock(mu);
          calls.emplace_back(model, x.rows());
        }
        Matrix y = FakePredictRows(x, t);
        if (model == "b") {
          for (size_t i = 0; i < y.rows(); ++i) y(i, 0) += 1000.0f;
        }
        return y;
      });
  std::vector<std::future<float>> futures;
  for (int i = 0; i < 10; ++i) {
    float x[1] = {float(i)};
    futures.push_back(
        scheduler.Submit(x, 0.0f, 0, i % 2 == 0 ? "a" : "b"));
  }
  scheduler.Drain();
  for (int i = 0; i < 10; ++i) {
    float expected = float(i) + (i % 2 == 0 ? 0.0f : 1000.0f);
    EXPECT_FLOAT_EQ(futures[i].get(), expected) << "row " << i;
  }
  // Interleaved submissions must coalesce into one batch fn call per model
  // per flush, not one per row.
  std::lock_guard<std::mutex> lock(mu);
  size_t a_rows = 0, b_rows = 0;
  for (const auto& [model, rows] : calls) {
    ASSERT_TRUE(model == "a" || model == "b");
    (model == "a" ? a_rows : b_rows) += rows;
  }
  EXPECT_EQ(a_rows, 5u);
  EXPECT_EQ(b_rows, 5u);
  EXPECT_LE(calls.size(), 10u);
}

TEST(BatchSchedulerTest, SubmitRowInvokesCallbackWithLatency) {
  SchedulerConfig cfg;
  cfg.dim = 2;
  cfg.max_batch = 4;
  cfg.max_delay_ms = 1.0;
  BatchScheduler scheduler(cfg, FakePredict);
  std::promise<float> value_promise;
  std::atomic<double> latency{-1.0};
  std::atomic<double> queue_ms{-1.0};
  std::atomic<double> predict_ms{-1.0};
  float x[2] = {2.0f, 3.0f};
  scheduler.SubmitRow("", x, 0.5f,
                      [&](float value, std::exception_ptr error,
                          const BatchScheduler::RowTiming& timing) {
                        latency.store(timing.latency_ms);
                        queue_ms.store(timing.queue_ms);
                        predict_ms.store(timing.predict_ms);
                        if (error) {
                          value_promise.set_exception(error);
                        } else {
                          value_promise.set_value(value);
                        }
                      });
  scheduler.Drain();
  EXPECT_FLOAT_EQ(value_promise.get_future().get(), 2.0f + 3.0f + 5.0f);
  EXPECT_GE(latency.load(), 0.0);
  EXPECT_GE(queue_ms.load(), 0.0);
  EXPECT_GE(predict_ms.load(), 0.0);
  // The split is exhaustive: queue + predict spans the whole row latency.
  EXPECT_NEAR(latency.load(), queue_ms.load() + predict_ms.load(), 1e-6);
}

// ------------------------------------------------------------------ stats ---

TEST(ServeStatsTest, SnapshotAggregatesCounters) {
  ServeStats stats;
  for (int i = 0; i < 10; ++i) stats.RecordRequest();
  stats.RecordCacheHit();
  stats.RecordCacheMiss();
  stats.RecordCacheMiss();
  stats.RecordBatch(8);
  stats.RecordBatch(4);
  for (int i = 1; i <= 100; ++i) stats.RecordLatencyMs(double(i % 64));
  StatsSnapshot s = stats.Snapshot();
  EXPECT_EQ(s.requests, 10u);
  EXPECT_NEAR(s.cache_hit_rate, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(s.avg_batch_size, 6.0, 1e-9);
  EXPECT_GT(s.latency_p99_ms, s.latency_p50_ms);
  EXPECT_GT(s.qps, 0.0);
  EXPECT_EQ(s.latency_hist.count, 100u);
  EXPECT_FALSE(stats.Report().empty());
  stats.Reset();
  EXPECT_EQ(stats.Snapshot().requests, 0u);
  EXPECT_TRUE(stats.Snapshot().latency_hist.empty());
}

TEST(ServeStatsTest, PercentileOfSortedUsesNearestRank) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(double(i));
  // Nearest-rank: the ceil(p*n)-th smallest — never interpolated, never
  // rounded past the end.
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 0.50), 50.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 0.99), 99.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 1.00), 100.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 0.001), 1.0);
  std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(PercentileOfSorted(one, 0.99), 7.0);
  std::vector<double> four{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(PercentileOfSorted(four, 0.50), 2.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(four, 0.75), 3.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(four, 0.76), 4.0);
}

TEST(ServeStatsTest, SpansFeedStageHistogramsAndSlowRing) {
  ServeStats stats;
  stats.ConfigureSlowTrace(/*threshold_ms=*/10.0, /*capacity=*/2);
  SpanRecord fast;
  fast.route = "a";
  fast.total_ms = 1.0;
  fast.stage_ms[size_t(Stage::kPredict)] = 0.8;
  stats.RecordSpan(fast);
  for (int i = 0; i < 3; ++i) {
    SpanRecord slow;
    slow.route = "a";
    slow.tag = uint64_t(i + 1);
    slow.total_ms = 20.0 + i;
    slow.stage_ms[size_t(Stage::kQueue)] = 5.0;
    slow.stage_ms[size_t(Stage::kPredict)] = 15.0 + i;
    stats.RecordSpan(slow);
  }
  StatsSnapshot s = stats.Snapshot();
  ASSERT_EQ(s.stage_hists.size(), kNumStages);
  EXPECT_EQ(s.stage_hists[size_t(Stage::kPredict)].count, 4u);
  EXPECT_EQ(s.stage_hists[size_t(Stage::kQueue)].count, 3u);
  EXPECT_EQ(s.stage_hists[size_t(Stage::kDecode)].count, 0u);
  // Ring capacity 2: the fast span never entered, the oldest slow span
  // rotated out, and the survivors are oldest-first.
  ASSERT_EQ(s.slow_requests.size(), 2u);
  EXPECT_EQ(s.slow_requests[0].tag, 2u);
  EXPECT_EQ(s.slow_requests[1].tag, 3u);
  // StatsToJson carries the per-stage percentiles the admin plane serves.
  std::string json = StatsToJson(s);
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  EXPECT_NE(json.find("\"predict\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_ms\""), std::string::npos);
}

// -------------------------------------------- end-to-end with a real model ---

class ServeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticSpec spec;
    spec.n = 600;
    spec.dim = 6;
    db_ = std::make_unique<data::Database>(data::GenerateMixture(spec),
                                           data::Metric::kEuclidean);
    data::WorkloadSpec wspec;
    wspec.num_queries = 25;
    wspec.w = 6;
    wspec.max_sel_fraction = 0.2;
    wl_ = data::GenerateWorkload(*db_, wspec);
    ctx_.db = db_.get();
    ctx_.workload = &wl_;
    ctx_.epochs = 6;
    cfg_.input_dim = 6;
    cfg_.tmax = wl_.tmax;
    cfg_.num_control = 6;
    cfg_.latent_dim = 3;
    cfg_.ae_hidden = 16;
    cfg_.tau_hidden = 20;
    cfg_.p_hidden = 24;
    cfg_.embed_h = 5;
    cfg_.ae_pretrain_epochs = 2;
    model_ = std::make_shared<core::SelNetCt>(cfg_);
    model_->Fit(ctx_);
  }

  ServerConfig MakeServerConfig(bool batching, bool cache) {
    ServerConfig scfg;
    scfg.dim = 6;
    scfg.enable_batching = batching;
    scfg.enable_cache = cache;
    scfg.scheduler.max_batch = 16;
    scfg.scheduler.max_delay_ms = 0.5;
    return scfg;
  }

  std::unique_ptr<data::Database> db_;
  data::Workload wl_;
  eval::TrainContext ctx_;
  core::SelNetConfig cfg_;
  std::shared_ptr<core::SelNetCt> model_;
};

TEST_F(ServeFixture, BatchedResultsIdenticalToUnbatchedPredict) {
  SelNetServer server(MakeServerConfig(/*batching=*/true, /*cache=*/false));
  server.Publish(model_);
  data::Batch b = data::MaterializeAll(wl_.queries, wl_.test);

  std::vector<std::future<float>> futures;
  for (size_t i = 0; i < b.x.rows(); ++i) {
    futures.push_back(server.EstimateAsync(b.x.row(i), b.t(i, 0)));
  }
  // Reference: direct single-row Predict outside the serving stack.
  for (size_t i = 0; i < b.x.rows(); ++i) {
    Matrix x1 = b.x.RowSlice(i, i + 1);
    Matrix t1 = b.t.RowSlice(i, i + 1);
    float expected = model_->Predict(x1, t1)(0, 0);
    EXPECT_EQ(futures[i].get(), expected) << "row " << i;
  }
  EXPECT_GT(server.stats().Snapshot().batches, 0u);
}

TEST_F(ServeFixture, RepeatQueryHitsCache) {
  SelNetServer server(MakeServerConfig(/*batching=*/true, /*cache=*/true));
  server.Publish(model_);
  const float* q = wl_.queries.row(0);
  auto first = server.Estimate(q, 0.5f * wl_.tmax);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = server.Estimate(q, 0.5f * wl_.tmax);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.ValueOrDie(), second.ValueOrDie());
  EXPECT_EQ(server.cache().hits(), 1u);
  EXPECT_EQ(server.stats().Snapshot().cache_hits, 1u);
}

TEST_F(ServeFixture, EstimateWithoutModelIsNotFound) {
  SelNetServer server(MakeServerConfig(true, true));
  float x[6] = {0};
  auto result = server.Estimate(x, 0.5f);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kNotFound);
}

TEST_F(ServeFixture, SweepIsMonotoneInThreshold) {
  SelNetServer server(MakeServerConfig(true, true));
  server.Publish(model_);
  std::vector<float> ts;
  for (int i = 0; i < 12; ++i) ts.push_back(wl_.tmax * float(i) / 11.0f);
  auto sweep = server.EstimateSweep(wl_.queries.row(1), ts);
  ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
  const std::vector<float>& y = sweep.ValueOrDie();
  ASSERT_EQ(y.size(), ts.size());
  for (size_t i = 1; i < y.size(); ++i) {
    EXPECT_GE(y[i] + 1e-3f, y[i - 1]) << "sweep not monotone at " << i;
  }
}

TEST_F(ServeFixture, FoldCacheInvalidationRestoresExactPredictions) {
  // Guards the inference-fusion cache contract: after parameters are mutated
  // and restored (as Fit's best-epoch restore does), Predict must return
  // exactly the original estimates — a stale cached fold would not.
  data::Batch b = data::MaterializeAll(wl_.queries, wl_.test);
  Matrix before = model_->Predict(b.x, b.t);  // Builds the fold cache.

  std::vector<Matrix> snapshot;
  for (const auto& p : model_->Params()) snapshot.push_back(p->value);
  for (const auto& p : model_->Params()) {
    p->value.Apply([](float v) { return v * 1.25f + 0.01f; });
  }
  model_->InvalidateInferenceCache();
  Matrix perturbed = model_->Predict(b.x, b.t);

  size_t i = 0;
  for (const auto& p : model_->Params()) p->value = snapshot[i++];
  model_->InvalidateInferenceCache();
  Matrix after = model_->Predict(b.x, b.t);

  bool any_diff = false;
  for (size_t r = 0; r < before.size(); ++r) {
    if (before.data()[r] != perturbed.data()[r]) any_diff = true;
    EXPECT_EQ(before.data()[r], after.data()[r]) << "row " << r;
  }
  EXPECT_TRUE(any_diff) << "perturbation should have changed predictions";
}

TEST_F(ServeFixture, HotSwapUnderConcurrentLoadFailsNoQuery) {
  // Acceptance criterion: zero failed queries during model republish.
  SelNetServer server(MakeServerConfig(/*batching=*/true, /*cache=*/false));
  server.Publish(model_);

  // A second, independently trained snapshot to alternate with.
  std::string path = ::testing::TempDir() + "/serve_swap.selm";
  ASSERT_TRUE(core::SaveModel(*model_, path).ok());
  auto loaded = core::LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::shared_ptr<core::SelNetCt> other(loaded.MoveValueUnsafe());
  std::remove(path.c_str());

  std::atomic<bool> stop{false};
  std::atomic<size_t> failed{0};
  std::atomic<size_t> answered{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng(100 + c);
      while (!stop.load()) {
        size_t qi = static_cast<size_t>(
            rng.UniformInt(0, int64_t(wl_.queries.rows()) - 1));
        float t = wl_.tmax * float(rng.Uniform());
        auto result = server.Estimate(wl_.queries.row(qi), t);
        if (!result.ok() || !std::isfinite(result.ValueOrDie())) {
          failed.fetch_add(1);
        }
        answered.fetch_add(1);
      }
    });
  }
  // Republish aggressively while clients are querying.
  for (int swap = 0; swap < 50; ++swap) {
    server.Publish(swap % 2 == 0 ? other : model_);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (auto& th : clients) th.join();

  EXPECT_EQ(failed.load(), 0u);
  EXPECT_GT(answered.load(), 0u);
  EXPECT_GE(server.stats().Snapshot().swaps, 51u);
}

// ------------------------------------------------- request-object serving ---

TEST_F(ServeFixture, SweepFastPathBitIdenticalToRowExpansion) {
  // Model level: one control-point evaluation + K PWL lookups must equal the
  // K-row batched Predict bit-for-bit (the SweepCapable contract).
  std::vector<float> ts;
  for (int i = 0; i < 16; ++i) ts.push_back(wl_.tmax * float(i) / 15.0f);
  const float* q = wl_.queries.row(2);
  std::vector<float> fast = model_->SweepEstimate(q, ts.data(), ts.size());
  Matrix xm(ts.size(), 6), tm(ts.size(), 1);
  for (size_t r = 0; r < ts.size(); ++r) {
    std::copy(q, q + 6, xm.row(r));
    tm(r, 0) = ts[r];
  }
  Matrix expanded = model_->Predict(xm, tm);
  ASSERT_EQ(fast.size(), ts.size());
  for (size_t r = 0; r < ts.size(); ++r) {
    EXPECT_EQ(fast[r], expanded(r, 0)) << "threshold " << ts[r];
  }

  // Server level: the same request answered through the fast path and
  // through row-expansion fallback must agree exactly too.
  ServerConfig fast_cfg = MakeServerConfig(/*batching=*/true, /*cache=*/false);
  ServerConfig slow_cfg = fast_cfg;
  slow_cfg.enable_sweep_fastpath = false;
  SelNetServer fast_server(fast_cfg);
  SelNetServer slow_server(slow_cfg);
  fast_server.Publish(model_);
  slow_server.Publish(model_);
  EstimateResponse a =
      fast_server.Submit(EstimateRequest::Sweep(q, 6, ts)).get();
  EstimateResponse b =
      slow_server.Submit(EstimateRequest::Sweep(q, 6, ts)).get();
  EXPECT_TRUE(a.fast_path);
  EXPECT_FALSE(b.fast_path);
  ASSERT_EQ(a.estimates.size(), b.estimates.size());
  for (size_t r = 0; r < a.estimates.size(); ++r) {
    EXPECT_EQ(a.estimates[r], b.estimates[r]) << "threshold " << ts[r];
  }
  EXPECT_EQ(fast_server.stats().Snapshot().sweep_fastpath, 1u);
  EXPECT_EQ(slow_server.stats().Snapshot().sweep_fastpath, 0u);
}

TEST_F(ServeFixture, PartitionedSweepEstimateMatchesPredict) {
  core::PartitionedConfig pcfg;
  pcfg.base = cfg_;
  pcfg.partition.k = 2;
  auto model = std::make_shared<core::SelNetPartitioned>(pcfg);
  model->Fit(ctx_);
  std::vector<float> ts;
  for (int i = 0; i < 12; ++i) ts.push_back(wl_.tmax * float(i) / 11.0f);
  const float* q = wl_.queries.row(4);
  std::vector<float> fast = model->SweepEstimate(q, ts.data(), ts.size());
  Matrix xm(ts.size(), 6), tm(ts.size(), 1);
  for (size_t r = 0; r < ts.size(); ++r) {
    std::copy(q, q + 6, xm.row(r));
    tm(r, 0) = ts[r];
  }
  Matrix expanded = model->Predict(xm, tm);
  for (size_t r = 0; r < ts.size(); ++r) {
    EXPECT_EQ(fast[r], expanded(r, 0)) << "threshold " << ts[r];
  }

  // And it serves through the generic endpoint with the fast path engaged.
  SelNetServer server(MakeServerConfig(/*batching=*/true, /*cache=*/false));
  server.Publish(model);
  EstimateResponse resp =
      server.Submit(EstimateRequest::Sweep(q, 6, ts)).get();
  EXPECT_TRUE(resp.fast_path);
  for (size_t r = 0; r < ts.size(); ++r) {
    EXPECT_EQ(resp.estimates[r], expanded(r, 0));
  }
}

TEST_F(ServeFixture, ServedKdeBaselineAnswersThroughSameEndpoint) {
  // Acceptance criterion: a non-SelNet eval::Estimator served end-to-end
  // through the same SelNetServer endpoint.
  bl::KdeConfig kcfg;
  kcfg.num_samples = 200;
  auto kde = std::make_shared<bl::KdeEstimator>(kcfg);
  kde->Fit(ctx_);

  SelNetServer server(MakeServerConfig(/*batching=*/true, /*cache=*/false));
  server.Publish(model_);        // Default slot: SelNet.
  server.Publish("kde", kde);    // Baseline slot, same endpoint.

  const float* q = wl_.queries.row(3);
  std::vector<float> ts;
  for (int i = 1; i <= 8; ++i) ts.push_back(wl_.tmax * float(i) / 8.0f);

  // Scalar through the KDE route matches direct KDE prediction.
  Matrix x1(1, 6), t1(1, 1);
  std::copy(q, q + 6, x1.row(0));
  t1(0, 0) = ts[2];
  float direct = kde->Predict(x1, t1)(0, 0);
  EstimateResponse scalar =
      server.Submit(EstimateRequest::Point(q, 6, ts[2], "kde")).get();
  EXPECT_EQ(scalar.estimates[0], direct);
  EXPECT_EQ(scalar.model, "kde");

  // A sweep through the KDE route row-expands (no SweepCapable) but still
  // returns a monotone column — KDE is a consistent estimator.
  EstimateResponse sweep =
      server.Submit(EstimateRequest::Sweep(q, 6, ts, "kde")).get();
  EXPECT_FALSE(sweep.fast_path);
  ASSERT_EQ(sweep.estimates.size(), ts.size());
  for (size_t i = 1; i < sweep.estimates.size(); ++i) {
    EXPECT_GE(sweep.estimates[i], sweep.estimates[i - 1]);
  }

  // A/B in one line each: same query, same thresholds, different route.
  EstimateResponse selnet_resp =
      server.Submit(EstimateRequest::Sweep(q, 6, ts)).get();
  EXPECT_NE(selnet_resp.version, sweep.version);
  EXPECT_EQ(selnet_resp.model, "default");
  server.Drain();
  EXPECT_GE(server.stats().Snapshot().sweeps, 2u);
}

TEST_F(ServeFixture, SweepMonotoneUnderConcurrentHotSwap) {
  // Satellite: sorted sweeps must stay non-decreasing even while the model
  // is republished aggressively mid-traffic (rows of one sweep may resolve
  // against different versions; Finalize's repair absorbs the seam).
  SelNetServer server(MakeServerConfig(/*batching=*/true, /*cache=*/true));
  server.Publish(model_);

  std::string path = ::testing::TempDir() + "/serve_sweep_swap.selm";
  ASSERT_TRUE(core::SaveModel(*model_, path).ok());
  auto loaded = core::LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::shared_ptr<core::SelNetCt> other(loaded.MoveValueUnsafe());
  std::remove(path.c_str());

  std::vector<float> ts;
  for (int i = 0; i < 16; ++i) ts.push_back(wl_.tmax * float(i) / 15.0f);

  std::atomic<bool> stop{false};
  std::atomic<size_t> violations{0};
  std::atomic<size_t> failures{0};
  std::atomic<size_t> sweeps_done{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng(200 + c);
      while (!stop.load()) {
        size_t qi = static_cast<size_t>(
            rng.UniformInt(0, int64_t(wl_.queries.rows()) - 1));
        try {
          EstimateResponse resp =
              server.Submit(EstimateRequest::Sweep(wl_.queries.row(qi), 6, ts))
                  .get();
          for (size_t i = 1; i < resp.estimates.size(); ++i) {
            if (resp.estimates[i] < resp.estimates[i - 1]) {
              violations.fetch_add(1);
            }
            if (!std::isfinite(resp.estimates[i])) failures.fetch_add(1);
          }
        } catch (...) {
          failures.fetch_add(1);
        }
        sweeps_done.fetch_add(1);
      }
    });
  }
  for (int swap = 0; swap < 40; ++swap) {
    server.Publish(swap % 2 == 0 ? other : model_);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (auto& th : clients) th.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(sweeps_done.load(), 0u);
}

TEST_F(ServeFixture, FullyCachedSweepResolvesWithoutModelWork) {
  SelNetServer server(MakeServerConfig(/*batching=*/true, /*cache=*/true));
  server.Publish(model_);
  std::vector<float> ts;
  for (int i = 1; i <= 6; ++i) ts.push_back(wl_.tmax * float(i) / 6.0f);
  const float* q = wl_.queries.row(5);
  EstimateResponse first =
      server.Submit(EstimateRequest::Sweep(q, 6, ts)).get();
  EXPECT_EQ(first.cache_hits, 0u);
  EstimateResponse second =
      server.Submit(EstimateRequest::Sweep(q, 6, ts)).get();
  EXPECT_EQ(second.cache_hits, ts.size());
  EXPECT_FALSE(second.fast_path);  // Nothing was missing.
  ASSERT_EQ(first.estimates.size(), second.estimates.size());
  for (size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(first.estimates[i], second.estimates[i]);
  }
}

TEST_F(ServeFixture, MalformedRequestFailsFutureNotServer) {
  SelNetServer server(MakeServerConfig(/*batching=*/true, /*cache=*/true));
  server.Publish(model_);
  // Wrong dimensionality and empty thresholds fail the request's future;
  // the server keeps serving.
  EstimateRequest bad_dim;
  bad_dim.x.assign(3, 0.0f);  // dim is 6.
  bad_dim.thresholds.assign(1, 0.5f);
  EXPECT_THROW(server.Submit(std::move(bad_dim)).get(), std::invalid_argument);
  EstimateRequest no_ts;
  no_ts.x.assign(6, 0.0f);
  EXPECT_THROW(server.Submit(std::move(no_ts)).get(), std::invalid_argument);
  auto ok = server.Estimate(wl_.queries.row(0), 0.5f * wl_.tmax);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

// A SweepCapable implementation that violates its contract (returns count-1
// values) — user-model bugs must fail the request, never the server.
class BrokenSweepEstimator : public eval::Estimator,
                             public eval::SweepCapable {
 public:
  std::string Name() const override { return "Broken"; }
  bool IsConsistent() const override { return true; }
  void Fit(const eval::TrainContext&) override {}
  Matrix Predict(const Matrix& x, const Matrix&) override {
    return Matrix(x.rows(), 1);
  }
  std::vector<float> SweepEstimate(const float*, const float*,
                                   size_t count) override {
    return std::vector<float>(count - 1, 0.0f);
  }
};

TEST_F(ServeFixture, BrokenSweepCapableModelFailsRequestNotServer) {
  SelNetServer server(MakeServerConfig(/*batching=*/true, /*cache=*/false));
  server.Publish(model_);
  server.Publish("broken", std::make_shared<BrokenSweepEstimator>());
  std::vector<float> ts = {0.1f, 0.2f, 0.3f, 0.4f};
  const float* q = wl_.queries.row(0);
  EXPECT_THROW(
      server.Submit(EstimateRequest::Sweep(q, 6, ts, "broken")).get(),
      std::runtime_error);
  // The healthy route keeps answering.
  auto ok = server.Estimate(q, 0.5f * wl_.tmax);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST_F(ServeFixture, EstimateAsyncFutureReportsReady) {
  // The shim must return a real future: wait_for eventually says ready (a
  // deferred future would report deferred forever and break pollers).
  SelNetServer server(MakeServerConfig(/*batching=*/true, /*cache=*/false));
  server.Publish(model_);
  std::future<float> f = server.EstimateAsync(wl_.queries.row(0), 0.5f);
  EXPECT_EQ(f.wait_for(std::chrono::seconds(5)), std::future_status::ready);
  EXPECT_TRUE(std::isfinite(f.get()));
}

TEST_F(ServeFixture, RepublishAfterWeightMutationServesNoStalePacks) {
  // The stale-pack regression: batched serving runs against version-keyed
  // packed weight panels. After an in-place weight update + republish (the
  // UpdateManager pattern), batched answers must be bit-identical to
  // single-row Predict — which never touches the packed path — on the NEW
  // weights. A stale pack would serve pre-update weights silently.
  SelNetServer server(MakeServerConfig(/*batching=*/true, /*cache=*/false));
  server.Publish(model_);
  data::Batch b = data::MaterializeAll(wl_.queries, wl_.test);
  {
    std::vector<std::future<float>> warm;
    for (size_t i = 0; i < b.x.rows(); ++i) {
      warm.push_back(server.EstimateAsync(b.x.row(i), b.t(i, 0)));
    }
    for (auto& f : warm) f.get();  // Packs are now warm for this version.
  }

  for (const auto& p : model_->Params()) {
    p->value.Apply([](float v) { return v * 1.1f + 0.02f; });
  }
  model_->InvalidateInferenceCache();  // The update/publish boundary.
  server.Publish(model_);

  std::vector<std::future<float>> futures;
  for (size_t i = 0; i < b.x.rows(); ++i) {
    futures.push_back(server.EstimateAsync(b.x.row(i), b.t(i, 0)));
  }
  for (size_t i = 0; i < b.x.rows(); ++i) {
    Matrix x1 = b.x.RowSlice(i, i + 1);
    Matrix t1 = b.t.RowSlice(i, i + 1);
    float expected = model_->Predict(x1, t1)(0, 0);
    EXPECT_EQ(futures[i].get(), expected) << "stale pack at row " << i;
  }
}

TEST_F(ServeFixture, CurveCacheAnswersNewThresholdsWithoutNetwork) {
  ServerConfig scfg = MakeServerConfig(/*batching=*/false, /*cache=*/true);
  scfg.enable_curve_cache = true;
  SelNetServer server(scfg);
  server.Publish(model_);
  const float* q = wl_.queries.row(2);

  std::vector<float> ts1, ts2;
  for (int i = 1; i <= 4; ++i) {
    ts1.push_back(wl_.tmax * float(i) / 5.0f);
    ts2.push_back(wl_.tmax * (float(i) - 0.5f) / 5.0f);  // Disjoint from ts1.
  }
  auto first = server.EstimateSweep(q, ts1);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(server.cache().curve_size(), 1u);  // Curve stored on the miss.

  // New thresholds: every scalar-cache lookup misses, but the cached curve
  // answers without touching the network — bit-identical to the model's own
  // sweep path (same control points, same PWL arithmetic).
  auto second = server.EstimateSweep(q, ts2);
  ASSERT_TRUE(second.ok());
  EXPECT_GE(server.cache().curve_hits(), 1u);
  EXPECT_GE(server.stats().Snapshot().curve_hits, 1u);
  std::vector<float> expected =
      model_->SweepEstimate(q, ts2.data(), ts2.size());
  ASSERT_EQ(second.ValueOrDie().size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(second.ValueOrDie()[i], expected[i]) << "threshold " << i;
  }
}

TEST_F(ServeFixture, CurveCacheIsVersionKeyedAcrossHotSwap) {
  ServerConfig scfg = MakeServerConfig(/*batching=*/false, /*cache=*/true);
  scfg.enable_curve_cache = true;
  SelNetServer server(scfg);
  server.Publish(model_);
  const float* q = wl_.queries.row(3);
  std::vector<float> ts = {0.25f * wl_.tmax, 0.5f * wl_.tmax,
                           0.75f * wl_.tmax};
  auto before = server.EstimateSweep(q, ts);
  ASSERT_TRUE(before.ok());

  for (const auto& p : model_->Params()) {
    p->value.Apply([](float v) { return v * 1.2f + 0.05f; });
  }
  model_->InvalidateInferenceCache();
  server.Publish(model_);  // New version: old curve entries can never match.

  auto after = server.EstimateSweep(q, ts);
  ASSERT_TRUE(after.ok());
  std::vector<float> expected = model_->SweepEstimate(q, ts.data(), ts.size());
  bool any_diff = false;
  for (size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(after.ValueOrDie()[i], expected[i]) << "threshold " << i;
    if (after.ValueOrDie()[i] != before.ValueOrDie()[i]) any_diff = true;
  }
  EXPECT_TRUE(any_diff) << "weight mutation should have changed the sweep";
}

// ------------------------------------------------- live-update pipeline ---

TEST_F(ServeFixture, PerRouteStatsSplitRequestsByModel) {
  // Satellite: requests / latency / hit-rate per model route in ONE report,
  // so served A/B experiments read cleanly.
  bl::KdeConfig kcfg;
  kcfg.num_samples = 150;
  auto kde = std::make_shared<bl::KdeEstimator>(kcfg);
  kde->Fit(ctx_);
  SelNetServer server(MakeServerConfig(/*batching=*/true, /*cache=*/true));
  server.Publish(model_);
  server.Publish("kde", kde);

  const float* q = wl_.queries.row(0);
  float t = 0.5f * wl_.tmax;
  ASSERT_TRUE(server.Estimate(q, t).ok());
  ASSERT_TRUE(server.Estimate(q, t).ok());  // Repeat: default-route cache hit.
  std::vector<float> ts = {0.2f * wl_.tmax, 0.4f * wl_.tmax, 0.6f * wl_.tmax,
                           0.8f * wl_.tmax};
  server.Submit(EstimateRequest::Sweep(q, 6, ts, "kde")).get();
  server.Drain();

  StatsSnapshot s = server.stats().Snapshot();
  ASSERT_EQ(s.routes.size(), 2u);  // Exactly the two served routes.
  const RouteSnapshot* def = nullptr;
  const RouteSnapshot* kde_route = nullptr;
  for (const auto& r : s.routes) {
    if (r.route == "default") def = &r;
    if (r.route == "kde") kde_route = &r;
  }
  ASSERT_NE(def, nullptr);
  ASSERT_NE(kde_route, nullptr);
  EXPECT_EQ(def->requests, 2u);
  EXPECT_EQ(def->cache_hits, 1u);
  EXPECT_EQ(def->cache_misses, 1u);
  EXPECT_NEAR(def->cache_hit_rate, 0.5, 1e-9);
  EXPECT_GT(def->latency_p99_ms, 0.0);
  EXPECT_EQ(kde_route->requests, 4u);
  EXPECT_EQ(kde_route->cache_hits, 0u);
  EXPECT_GT(kde_route->latency_p99_ms, 0.0);
  // Global view still aggregates both routes.
  EXPECT_EQ(s.requests, 6u);
  // The rendered report carries both route rows.
  std::string report = server.stats().Report();
  EXPECT_NE(report.find("default"), std::string::npos);
  EXPECT_NE(report.find("kde"), std::string::npos);
  // Reset zeroes route accumulators in place (handles stay valid).
  server.stats().Reset();
  StatsSnapshot zeroed = server.stats().Snapshot();
  ASSERT_EQ(zeroed.routes.size(), 2u);
  for (const auto& r : zeroed.routes) EXPECT_EQ(r.requests, 0u);
}

TEST_F(ServeFixture, AttachPipelineRequiresServedIncrementalModel) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SelNetServer server(MakeServerConfig(true, false));
  UpdatePipelineConfig ucfg;
  // No model published at all -> attach aborts.
  EXPECT_DEATH({ server.AttachUpdatePipeline(ucfg, *db_, wl_); },
               "no model published");
  // A served estimator without the IncrementalModel capability aborts too.
  bl::KdeConfig kcfg;
  kcfg.num_samples = 100;
  auto kde = std::make_shared<bl::KdeEstimator>(kcfg);
  kde->Fit(ctx_);
  server.Publish(kde);
  EXPECT_DEATH({ server.AttachUpdatePipeline(ucfg, *db_, wl_); },
               "not incrementally trainable");
}

TEST_F(ServeFixture, PipelineIngestsAppliesAndRepublishes) {
  // The basic ingest -> drift -> retrain -> republish loop, single-threaded
  // observation: one drift-tripping op must bump the served version without
  // the serving path ever being told.
  SelNetServer server(MakeServerConfig(/*batching=*/true, /*cache=*/false));
  uint64_t v0 = server.Publish(model_);
  UpdatePipelineConfig ucfg;
  ucfg.policy.mae_drift_fraction = 0.05;
  ucfg.policy.max_epochs = 2;
  ucfg.policy.patience = 1;
  LiveUpdatePipeline& pipeline = server.AttachUpdatePipeline(ucfg, *db_, wl_);

  core::UpdateOp op;
  op.is_insert = true;
  const float* hot = wl_.queries.row(wl_.valid.front().query_id);
  for (int i = 0; i < 150; ++i) op.vectors.emplace_back(hot, hot + 6);
  ASSERT_TRUE(pipeline.Submit(op));
  pipeline.Flush();

  UpdatePipelineState state = pipeline.Snapshot();
  EXPECT_EQ(state.ops_ingested, 1u);
  EXPECT_EQ(state.ops_applied, 1u);
  EXPECT_EQ(state.records_inserted, 150u);
  EXPECT_EQ(state.retrains_triggered, 1u);
  EXPECT_GT(state.epochs_run, 0u);
  EXPECT_EQ(state.publishes, 1u);
  EXPECT_GT(state.last_drift, 0.0);
  EXPECT_TRUE(state.idle);
  EXPECT_GT(server.registry().VersionOf("default"), v0);

  StatsSnapshot s = server.stats().Snapshot();
  EXPECT_EQ(s.update_ops, 1u);
  EXPECT_EQ(s.update_ops_applied, 1u);
  EXPECT_EQ(s.retrains, 1u);
  EXPECT_GE(s.retrain_epochs, state.epochs_run);
  EXPECT_EQ(s.pipeline_publishes, 1u);
  EXPECT_GE(s.last_publish_age_s, 0.0);
  // The pipeline section renders.
  EXPECT_NE(server.stats().Report().find("ops ingested"), std::string::npos);

  // Queries still answer on the new version, and the original model object
  // was never touched (the pipeline trains clones only).
  auto est = server.Estimate(wl_.queries.row(1), 0.5f * wl_.tmax);
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  EXPECT_TRUE(std::isfinite(est.ValueOrDie()));
}

TEST_F(ServeFixture, PipelinePublishStormUnderSubmitLoadFailsNoQuery) {
  // The acceptance storm: sustained mixed Submit traffic (scalars + sorted
  // sweeps) while the pipeline ingests ops, retrains, and republishes N
  // times. Zero failed queries; every sorted sweep stays non-decreasing
  // across every swap.
  SelNetServer server(MakeServerConfig(/*batching=*/true, /*cache=*/true));
  server.Publish(model_);
  UpdatePipelineConfig ucfg;
  ucfg.policy.mae_drift_fraction = 0.0;  // Any upward drift retrains.
  ucfg.policy.max_epochs = 1;            // Keep each retrain quick: the storm
  ucfg.policy.patience = 1;              // measures swaps, not convergence.
  LiveUpdatePipeline& pipeline = server.AttachUpdatePipeline(ucfg, *db_, wl_);

  std::vector<float> ts;
  for (int i = 0; i < 8; ++i) ts.push_back(wl_.tmax * float(i + 1) / 8.0f);

  std::atomic<bool> stop{false};
  std::atomic<size_t> failures{0};
  std::atomic<size_t> violations{0};
  std::atomic<size_t> answered{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng(300 + c);
      while (!stop.load()) {
        size_t qi = static_cast<size_t>(
            rng.UniformInt(0, int64_t(wl_.queries.rows()) - 1));
        try {
          if (c == 0) {  // One client sweeps, two send scalars.
            EstimateResponse resp =
                server.Submit(EstimateRequest::Sweep(wl_.queries.row(qi), 6,
                                                     ts))
                    .get();
            for (size_t i = 0; i < resp.estimates.size(); ++i) {
              if (!std::isfinite(resp.estimates[i])) failures.fetch_add(1);
              if (i > 0 && resp.estimates[i] < resp.estimates[i - 1]) {
                violations.fetch_add(1);
              }
            }
          } else {
            float t = wl_.tmax * float(rng.Uniform());
            auto est = server.Estimate(wl_.queries.row(qi), t);
            if (!est.ok() || !std::isfinite(est.ValueOrDie())) {
              failures.fetch_add(1);
            }
          }
        } catch (...) {
          failures.fetch_add(1);
        }
        answered.fetch_add(1);
        // Sustained traffic, not a spin loop: real clients have think time,
        // and the gaps are what lets the SCHED_IDLE pipeline thread make
        // progress when cores are scarce (TSan runs this on a loaded box).
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    });
  }

  // Feed drift-tripping ops until the pipeline has republished >= 3 times.
  const size_t kWantPublishes = 3;
  util::Stopwatch deadline;
  size_t fed = 0;
  while (pipeline.Snapshot().publishes < kWantPublishes &&
         deadline.ElapsedSeconds() < 60.0) {
    // Duplicates of a VALID-split query inflate validation labels, so every
    // op drifts the shadow MAE upward and (delta_U = 0) trips a retrain.
    core::UpdateOp op;
    op.is_insert = true;
    const float* hot =
        wl_.queries.row(wl_.valid[fed % wl_.valid.size()].query_id);
    for (int i = 0; i < 40; ++i) op.vectors.emplace_back(hot, hot + 6);
    if (pipeline.Submit(op)) ++fed;
    pipeline.Flush();
  }
  stop.store(true);
  for (auto& th : clients) th.join();
  server.Drain();

  UpdatePipelineState state = pipeline.Snapshot();
  EXPECT_GE(state.publishes, kWantPublishes) << "fed " << fed << " ops";
  EXPECT_GE(state.retrains_triggered, 1u);
  EXPECT_EQ(state.ops_applied, fed);
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(answered.load(), 0u);
  StatsSnapshot s = server.stats().Snapshot();
  EXPECT_GE(s.swaps, 1u + kWantPublishes);  // Initial publish + the storm's.
  EXPECT_EQ(s.pipeline_publishes, state.publishes);
}

TEST(ServerConfigTest, SchedulerDimInheritsFromServerDim) {
  // Satellite: ServerConfig.dim is the single source of truth; 0 inherits.
  ServerConfig cfg;
  cfg.dim = 4;
  cfg.enable_batching = true;
  EXPECT_EQ(cfg.scheduler.dim, 0u);
  SelNetServer server(cfg);
  EXPECT_EQ(server.config().scheduler.dim, 4u);
  // An explicitly matching value is also accepted.
  ServerConfig same = cfg;
  same.scheduler.dim = 4;
  SelNetServer server2(same);
  EXPECT_EQ(server2.config().scheduler.dim, 4u);
}

TEST(ServerConfigDeathTest, SchedulerDimMismatchAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ServerConfig cfg;
  cfg.dim = 4;
  cfg.scheduler.dim = 8;  // Conflicts: used to be silently overwritten.
  EXPECT_DEATH({ SelNetServer server(cfg); }, "SchedulerConfig.dim");
}

// ---------------------------------------------------- admission / overload ---

/// Predict blocks until Release(): holds the serving pipeline saturated so
/// admission and deadline behavior can be probed deterministically.
class BlockingEstimator : public eval::Estimator {
 public:
  std::string Name() const override { return "Blocking"; }
  bool IsConsistent() const override { return true; }
  void Fit(const eval::TrainContext&) override {}
  Matrix Predict(const Matrix& x, const Matrix&) override {
    started_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return released_; });
    Matrix y(x.rows(), 1);
    for (size_t i = 0; i < x.rows(); ++i) y(i, 0) = 1.0f;
    return y;
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }
  size_t started() const { return started_.load(std::memory_order_relaxed); }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool released_ = false;
  std::atomic<size_t> started_{0};
};

TEST(AdmissionControllerTest, WatermarksPartitionOneBudget) {
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.max_inflight = 4;
  cfg.priority_watermarks = {1.0, 0.5};
  cfg.routes["gold"] = RoutePolicy{0, false};
  cfg.routes["bronze"] = RoutePolicy{1, false};
  AdmissionController ctl(cfg);
  // Class 1 sheds at 50% of the budget; class 0 fills all of it.
  EXPECT_TRUE(ctl.Admit("bronze").admitted);
  EXPECT_TRUE(ctl.Admit("bronze").admitted);
  auto low = ctl.Admit("bronze");
  EXPECT_FALSE(low.admitted);
  EXPECT_EQ(low.reason, ShedReason::kPriorityShed);
  EXPECT_TRUE(ctl.Admit("gold").admitted);
  EXPECT_TRUE(ctl.Admit("gold").admitted);
  auto full = ctl.Admit("gold");
  EXPECT_FALSE(full.admitted);
  EXPECT_EQ(full.reason, ShedReason::kQueueFull);
  // Releases reopen the budget, lowest class last.
  ctl.Release();
  ctl.Release();
  ctl.Release();
  EXPECT_TRUE(ctl.Admit("bronze").admitted);
  EXPECT_EQ(ctl.inflight(), 2u);
  // An unconfigured route uses the default policy (class 0 here).
  EXPECT_TRUE(ctl.Admit("unknown-route").admitted);
}

TEST(AdmissionServeTest, SaturationShedsTypedAndAccountsPerReason) {
  ServerConfig cfg;
  cfg.dim = 2;
  cfg.enable_batching = true;
  cfg.enable_cache = false;
  cfg.scheduler.max_batch = 4;
  cfg.scheduler.max_delay_ms = 0.1;
  cfg.admission.enabled = true;
  cfg.admission.max_inflight = 4;
  cfg.admission.priority_watermarks = {1.0};
  SelNetServer server(cfg);
  auto blocking = std::make_shared<BlockingEstimator>();
  server.Publish(blocking);

  float x[2] = {0.1f, 0.2f};
  std::vector<std::future<EstimateResponse>> admitted;
  for (int i = 0; i < 4; ++i) {
    admitted.push_back(server.Submit(EstimateRequest::Point(x, 2, 0.5f)));
  }
  // Budget exhausted: every further submit is a TYPED rejection, delivered
  // synchronously (no scheduler queue, no pool worker).
  for (int i = 0; i < 3; ++i) {
    try {
      server.Submit(EstimateRequest::Point(x, 2, 0.5f)).get();
      FAIL() << "expected OverloadError";
    } catch (const OverloadError& e) {
      EXPECT_EQ(e.reason(), ShedReason::kQueueFull);
    }
  }
  blocking->Release();
  for (auto& f : admitted) {
    EstimateResponse resp = f.get();
    ASSERT_EQ(resp.estimates.size(), 1u);
    EXPECT_EQ(resp.estimates[0], 1.0f);
  }
  server.Drain();

  StatsSnapshot s = server.stats().Snapshot();
  EXPECT_EQ(s.sheds[size_t(ShedReason::kQueueFull)], 3u);
  EXPECT_EQ(s.shed_total, 3u);
  EXPECT_EQ(s.degraded, 0u);
  // Tickets were all handed back: the budget is whole again.
  ASSERT_NE(server.admission(), nullptr);
  EXPECT_EQ(server.admission()->inflight(), 0u);
  // The admin plane serializes the same taxonomy.
  std::string json = StatsToJson(s);
  EXPECT_NE(json.find("\"overload\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_full\":3"), std::string::npos);
}

TEST(AdmissionServeTest, PriorityClassesShedLowBeforeHigh) {
  ServerConfig cfg;
  cfg.dim = 2;
  cfg.enable_batching = true;
  cfg.enable_cache = false;
  cfg.scheduler.max_batch = 8;
  cfg.scheduler.max_delay_ms = 0.1;
  cfg.admission.enabled = true;
  cfg.admission.max_inflight = 4;
  cfg.admission.priority_watermarks = {1.0, 0.5};
  cfg.admission.routes["gold"] = RoutePolicy{0, false};
  cfg.admission.routes["bronze"] = RoutePolicy{1, false};
  SelNetServer server(cfg);
  auto blocking = std::make_shared<BlockingEstimator>();
  server.Publish("gold", blocking);
  server.Publish("bronze", blocking);

  float x[2] = {0.3f, 0.4f};
  std::vector<std::future<EstimateResponse>> admitted;
  auto submit = [&](const std::string& route) {
    return server.Submit(EstimateRequest::Point(x, 2, 0.5f, route));
  };
  // Low class fills to its 50% watermark, then sheds kPriorityShed while
  // the high class still gets the rest of the budget.
  admitted.push_back(submit("bronze"));
  admitted.push_back(submit("bronze"));
  try {
    submit("bronze").get();
    FAIL() << "expected OverloadError";
  } catch (const OverloadError& e) {
    EXPECT_EQ(e.reason(), ShedReason::kPriorityShed);
  }
  admitted.push_back(submit("gold"));
  admitted.push_back(submit("gold"));
  try {
    submit("gold").get();
    FAIL() << "expected OverloadError";
  } catch (const OverloadError& e) {
    EXPECT_EQ(e.reason(), ShedReason::kQueueFull);
  }
  blocking->Release();
  for (auto& f : admitted) EXPECT_EQ(f.get().estimates[0], 1.0f);
  server.Drain();

  StatsSnapshot s = server.stats().Snapshot();
  EXPECT_EQ(s.sheds[size_t(ShedReason::kPriorityShed)], 1u);
  EXPECT_EQ(s.sheds[size_t(ShedReason::kQueueFull)], 1u);
  EXPECT_EQ(s.shed_total, 2u);
}

TEST(AdmissionServeTest, ExpiredRowsDropBeforePredictWithTypedError) {
  util::ThreadPool pool(1);  // One worker: batches execute strictly in order.
  ServerConfig cfg;
  cfg.dim = 2;
  cfg.enable_batching = true;
  cfg.enable_cache = false;
  cfg.scheduler.max_batch = 8;
  cfg.scheduler.max_delay_ms = 0.1;
  cfg.scheduler.pool = &pool;
  SelNetServer server(cfg);
  auto blocking = std::make_shared<BlockingEstimator>();
  server.Publish(blocking);

  float x[2] = {0.5f, 0.6f};
  // Request A occupies the only worker inside Predict.
  auto blocked = server.Submit(EstimateRequest::Point(x, 2, 0.5f));
  while (blocking->started() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Request B carries a deadline that expires while its batch waits behind
  // A's. Its row must be dropped AT the batch boundary, never predicted.
  EstimateRequest doomed = EstimateRequest::Point(x, 2, 0.5f);
  doomed.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  auto expired = server.Submit(std::move(doomed));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  blocking->Release();

  EXPECT_EQ(blocked.get().estimates[0], 1.0f);
  try {
    expired.get();
    FAIL() << "expected OverloadError";
  } catch (const OverloadError& e) {
    EXPECT_EQ(e.reason(), ShedReason::kDeadlineExpired);
  }
  server.Drain();
  // Exactly one Predict ran: the expired row never reached the model.
  EXPECT_EQ(blocking->started(), 1u);
  StatsSnapshot s = server.stats().Snapshot();
  EXPECT_EQ(s.deadline_rows_dropped, 1u);
  EXPECT_EQ(s.deadline_rows_predicted, 0u);
  EXPECT_EQ(s.sheds[size_t(ShedReason::kDeadlineExpired)], 1u);
}

TEST(AdmissionServeTest, AlreadyExpiredDeadlineShedsAtSubmit) {
  ServerConfig cfg;
  cfg.dim = 2;
  cfg.enable_batching = true;
  cfg.enable_cache = false;
  SelNetServer server(cfg);
  server.Publish(std::make_shared<BrokenSweepEstimator>());  // Never reached.

  float x[2] = {0.0f, 0.0f};
  EstimateRequest req = EstimateRequest::Point(x, 2, 0.5f);
  req.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  try {
    server.Submit(std::move(req)).get();
    FAIL() << "expected OverloadError";
  } catch (const OverloadError& e) {
    EXPECT_EQ(e.reason(), ShedReason::kDeadlineExpired);
  }
  StatsSnapshot s = server.stats().Snapshot();
  EXPECT_EQ(s.sheds[size_t(ShedReason::kDeadlineExpired)], 1u);
  // Shed before routing: the request never counted as served work.
  EXPECT_EQ(s.requests, 0u);
}

TEST_F(ServeFixture, DegradedRouteServesCachedCurveBitIdentically) {
  ServerConfig cfg = MakeServerConfig(/*batching=*/true, /*cache=*/false);
  cfg.enable_curve_cache = true;
  cfg.admission.enabled = true;
  cfg.admission.max_inflight = 1;
  cfg.admission.default_policy.allow_degrade = true;
  SelNetServer server(cfg);
  server.Publish(model_);
  auto blocking = std::make_shared<BlockingEstimator>();
  server.Publish("block", blocking);

  const float* q = wl_.queries.row(0);
  std::vector<float> ts = {0.2f * wl_.tmax, 0.5f * wl_.tmax, 0.8f * wl_.tmax};
  // Prime: an admitted sweep populates the version-keyed curve cache.
  EstimateResponse primed =
      server.Submit(EstimateRequest::Sweep(q, 6, ts)).get();
  EXPECT_FALSE(primed.degraded);

  // Exhaust the budget (size 1) with a request parked inside Predict...
  float xb[6] = {0};
  auto blocked = server.Submit(EstimateRequest::Point(xb, 6, 0.5f, "block"));
  while (blocking->started() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // ...so the next sweep is shed — and, because the route opted in and the
  // curve is cached, answered DEGRADED: local PWL lookups, bit-identical to
  // the primed fast-path answer, zero model compute.
  EstimateResponse degraded =
      server.Submit(EstimateRequest::Sweep(q, 6, ts)).get();
  EXPECT_TRUE(degraded.degraded);
  EXPECT_EQ(degraded.version, primed.version);
  ASSERT_EQ(degraded.estimates.size(), primed.estimates.size());
  for (size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(degraded.estimates[i], primed.estimates[i]) << "threshold " << i;
  }

  // A shed on a route whose curve is NOT cached still fails typed.
  float other[6] = {9.0f, 9.0f, 9.0f, 9.0f, 9.0f, 9.0f};
  try {
    server.Submit(EstimateRequest::Sweep(other, 6, ts)).get();
    FAIL() << "expected OverloadError";
  } catch (const OverloadError& e) {
    EXPECT_EQ(e.reason(), ShedReason::kQueueFull);
  }

  blocking->Release();
  EXPECT_EQ(blocked.get().estimates[0], 1.0f);
  server.Drain();
  StatsSnapshot s = server.stats().Snapshot();
  EXPECT_EQ(s.degraded, 1u);
  EXPECT_EQ(s.sheds[size_t(ShedReason::kQueueFull)], 2u);
}

}  // namespace
}  // namespace selnet::serve
