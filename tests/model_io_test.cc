#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <unistd.h>

#include "core/model_io.h"
#include "data/synthetic.h"
#include "util/csv.h"

namespace selnet::core {
namespace {

using tensor::Matrix;

class ModelIoFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticSpec spec;
    spec.n = 600;
    spec.dim = 6;
    db_ = std::make_unique<data::Database>(data::GenerateMixture(spec),
                                           data::Metric::kEuclidean);
    data::WorkloadSpec wspec;
    wspec.num_queries = 25;
    wspec.w = 6;
    wspec.max_sel_fraction = 0.2;
    wl_ = data::GenerateWorkload(*db_, wspec);
    ctx_.db = db_.get();
    ctx_.workload = &wl_;
    ctx_.epochs = 8;
    cfg_.input_dim = 6;
    cfg_.tmax = wl_.tmax;
    cfg_.num_control = 6;
    cfg_.latent_dim = 3;
    cfg_.ae_hidden = 16;
    cfg_.tau_hidden = 20;
    cfg_.p_hidden = 24;
    cfg_.embed_h = 5;
    cfg_.ae_pretrain_epochs = 2;
  }
  std::unique_ptr<data::Database> db_;
  data::Workload wl_;
  eval::TrainContext ctx_;
  SelNetConfig cfg_;
};

TEST_F(ModelIoFixture, SaveLoadRoundTripPredictionsIdentical) {
  SelNetCt model(cfg_);
  model.Fit(ctx_);
  std::string path = ::testing::TempDir() + "/model.selm";
  ASSERT_TRUE(SaveModel(model, path).ok());

  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  SelNetCt* restored = loaded.ValueOrDie().get();
  EXPECT_EQ(restored->config().num_control, cfg_.num_control);
  EXPECT_FLOAT_EQ(restored->config().tmax, cfg_.tmax);

  data::Batch b = data::MaterializeAll(wl_.queries, wl_.test);
  Matrix ya = model.Predict(b.x, b.t);
  Matrix yb = restored->Predict(b.x, b.t);
  for (size_t i = 0; i < ya.size(); ++i) {
    EXPECT_FLOAT_EQ(ya.data()[i], yb.data()[i]);
  }
  std::remove(path.c_str());
}

TEST_F(ModelIoFixture, LoadedModelIsConsistent) {
  SelNetCt model(cfg_);
  model.Fit(ctx_);
  std::string path = ::testing::TempDir() + "/model2.selm";
  ASSERT_TRUE(SaveModel(model, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  SelNetCt* restored = loaded.ValueOrDie().get();
  Matrix x(20, 6), t(20, 1);
  for (size_t i = 0; i < 20; ++i) {
    std::copy(wl_.queries.row(0), wl_.queries.row(0) + 6, x.row(i));
    t(i, 0) = wl_.tmax * static_cast<float>(i) / 19.0f;
  }
  Matrix yhat = restored->Predict(x, t);
  for (size_t i = 1; i < 20; ++i) {
    EXPECT_GE(yhat(i, 0) + 1e-3f, yhat(i - 1, 0));
  }
  std::remove(path.c_str());
}

TEST_F(ModelIoFixture, MissingFileIsError) {
  auto loaded = LoadModel("/nonexistent/model.selm");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIoError);
}

TEST_F(ModelIoFixture, CorruptMagicRejected) {
  std::string path = ::testing::TempDir() + "/corrupt.selm";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("JUNKJUNK", 1, 8, f);
  std::fclose(f);
  auto loaded = LoadModel(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_F(ModelIoFixture, TruncatedFileRejected) {
  SelNetCt model(cfg_);
  std::string path = ::testing::TempDir() + "/trunc.selm";
  ASSERT_TRUE(SaveModel(model, path).ok());
  // Truncate to half size.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  auto loaded = LoadModel(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST_F(ModelIoFixture, FlippedParameterByteFailsWithOffset) {
  SelNetCt model(cfg_);
  std::string path = ::testing::TempDir() + "/flip.selm";
  ASSERT_TRUE(SaveModel(model, path).ok());
  // Flip one bit near the end of the file — inside the last parameter's
  // data or its CRC; either way the checksum check must localize it.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, -6, SEEK_END), 0);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
  std::fputc(c ^ 0x10, f);
  std::fclose(f);
  auto loaded = LoadModel(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIoError);
  EXPECT_NE(loaded.status().message().find("checksum mismatch"),
            std::string::npos)
      << loaded.status().ToString();
  EXPECT_NE(loaded.status().message().find("byte offset"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST_F(ModelIoFixture, ByteBufferRoundTripMatchesFileFormat) {
  SelNetCt model(cfg_);
  model.Fit(ctx_);
  auto bytes = SaveModelBytes(model);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();

  // The in-memory encoding IS the file encoding, byte for byte — the state
  // transfer path cannot drift from what SaveModel persists.
  std::string path = ::testing::TempDir() + "/bytes.selm";
  ASSERT_TRUE(SaveModel(model, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string file_bytes(bytes.ValueOrDie().size() + 16, '\0');
  size_t n = std::fread(&file_bytes[0], 1, file_bytes.size(), f);
  std::fclose(f);
  file_bytes.resize(n);
  EXPECT_EQ(file_bytes, bytes.ValueOrDie());
  std::remove(path.c_str());

  auto restored = LoadModelBytes(bytes.ValueOrDie(), "unit test buffer");
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  data::Batch b = data::MaterializeAll(wl_.queries, wl_.test);
  Matrix ya = model.Predict(b.x, b.t);
  Matrix yb = restored.ValueOrDie()->Predict(b.x, b.t);
  for (size_t i = 0; i < ya.size(); ++i) {
    // Bit-identical, not just close: failover correctness rests on this.
    EXPECT_EQ(ya.data()[i], yb.data()[i]);
  }

  // Corrupt transfer bytes are rejected with the origin named.
  std::string corrupt = bytes.ValueOrDie();
  corrupt[corrupt.size() - 6] ^= 0x04;
  auto bad = LoadModelBytes(corrupt, "unit test buffer");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("unit test buffer"),
            std::string::npos)
      << bad.status().ToString();
}

TEST(CsvTest, EscapesSpecialCharacters) {
  EXPECT_EQ(util::CsvWriter::Escape("plain"), "plain");
  EXPECT_EQ(util::CsvWriter::Escape("a,b"), "\"a,b\"");
  EXPECT_EQ(util::CsvWriter::Escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(util::CsvWriter::Escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, RendersHeaderAndRows) {
  util::CsvWriter csv({"model", "mse"});
  csv.AddRow({"SelNet", "4.95"});
  csv.AddRow({"with,comma", "1"});
  std::string s = csv.ToString();
  EXPECT_EQ(s, "model,mse\nSelNet,4.95\n\"with,comma\",1\n");
}

TEST(CsvTest, WriteFileRoundTrip) {
  util::CsvWriter csv({"a"});
  csv.AddRow({"1"});
  std::string path = ::testing::TempDir() + "/out.csv";
  ASSERT_TRUE(csv.WriteFile(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[16] = {0};
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "a\n1\n");
  std::remove(path.c_str());
}

TEST(CsvTest, WriteToBadPathIsIOError) {
  util::CsvWriter csv({"a"});
  EXPECT_EQ(csv.WriteFile("/no/such/dir/x.csv").code(),
            util::StatusCode::kIoError);
}

}  // namespace
}  // namespace selnet::core
