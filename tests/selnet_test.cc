#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/control_heads.h"
#include "core/selnet_ct.h"
#include "core/selnet_partitioned.h"
#include "data/synthetic.h"
#include "nn/serialize.h"

namespace selnet::core {
namespace {

using tensor::Matrix;

// Small shared fixture: a clustered dataset with an exact workload.
class SelNetFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticSpec spec;
    spec.n = 900;
    spec.dim = 8;
    spec.num_clusters = 5;
    db_ = std::make_unique<data::Database>(data::GenerateMixture(spec),
                                           data::Metric::kEuclidean);
    data::WorkloadSpec wspec;
    wspec.num_queries = 40;
    wspec.w = 8;
    wspec.max_sel_fraction = 0.25;  // labels span [1, 225] at n=900
    wl_ = data::GenerateWorkload(*db_, wspec);
    ctx_.db = db_.get();
    ctx_.workload = &wl_;
    ctx_.epochs = 60;
  }

  SelNetConfig SmallConfig() const {
    SelNetConfig cfg;
    cfg.input_dim = 8;
    cfg.tmax = wl_.tmax;
    cfg.num_control = 8;
    cfg.latent_dim = 4;
    cfg.ae_hidden = 24;
    cfg.tau_hidden = 32;
    cfg.p_hidden = 48;
    cfg.embed_h = 8;
    cfg.ae_pretrain_epochs = 3;
    cfg.batch_size = 64;
    return cfg;
  }

  double ConstantPredictorMae() const {
    // MAE of the best constant-in-log predictor (geometric mean of labels):
    // the baseline any trained model must beat.
    double log_sum = 0.0;
    for (const auto& s : wl_.test) log_sum += std::log(s.y + 1.0);
    double c = std::exp(log_sum / static_cast<double>(wl_.test.size())) - 1.0;
    double mae = 0.0;
    for (const auto& s : wl_.test) mae += std::fabs(s.y - c);
    return mae / static_cast<double>(wl_.test.size());
  }

  std::unique_ptr<data::Database> db_;
  data::Workload wl_;
  eval::TrainContext ctx_;
};

TEST(ControlHeadsTest, TauEndsPinnedAndStrictlyIncreasing) {
  util::Rng rng(1);
  HeadsConfig hc;
  hc.input_dim = 6;
  hc.num_control = 10;
  hc.tmax = 2.0f;
  hc.tau_hidden = 16;
  hc.p_hidden = 24;
  hc.embed_h = 4;
  ControlHeads heads(hc, &rng);
  ag::Var input = ag::Constant(Matrix::Gaussian(5, 6, &rng));
  auto out = heads.Forward(input);
  ASSERT_EQ(out.tau->cols(), 12u);  // L + 2
  for (size_t r = 0; r < 5; ++r) {
    EXPECT_FLOAT_EQ(out.tau->value(r, 0), 0.0f);
    EXPECT_NEAR(out.tau->value(r, 11), 2.0f, 1e-4f);
    for (size_t c = 1; c < 12; ++c) {
      EXPECT_GT(out.tau->value(r, c), out.tau->value(r, c - 1));
    }
  }
}

TEST(ControlHeadsTest, PIsNonNegativeAndMonotone) {
  util::Rng rng(2);
  HeadsConfig hc;
  hc.input_dim = 6;
  hc.num_control = 10;
  hc.tmax = 2.0f;
  hc.tau_hidden = 16;
  hc.p_hidden = 24;
  hc.embed_h = 4;
  ControlHeads heads(hc, &rng);
  ag::Var input = ag::Constant(Matrix::Gaussian(7, 6, &rng));
  auto out = heads.Forward(input);
  for (size_t r = 0; r < 7; ++r) {
    EXPECT_GE(out.p->value(r, 0), 0.0f);
    for (size_t c = 1; c < out.p->cols(); ++c) {
      EXPECT_GE(out.p->value(r, c), out.p->value(r, c - 1));
    }
  }
}

TEST(ControlHeadsTest, AdCtTausIgnoreQuery) {
  util::Rng rng(3);
  HeadsConfig hc;
  hc.input_dim = 6;
  hc.num_control = 6;
  hc.tmax = 1.0f;
  hc.tau_hidden = 16;
  hc.p_hidden = 24;
  hc.embed_h = 4;
  hc.query_dependent_tau = false;
  ControlHeads heads(hc, &rng);
  ag::Var input = ag::Constant(Matrix::Gaussian(4, 6, &rng));
  auto out = heads.Forward(input);
  for (size_t r = 1; r < 4; ++r) {
    for (size_t c = 0; c < out.tau->cols(); ++c) {
      EXPECT_FLOAT_EQ(out.tau->value(r, c), out.tau->value(0, c));
    }
  }
}

TEST_F(SelNetFixture, CtLearnsBetterThanConstantPredictor) {
  SelNetCt model(SmallConfig());
  model.Fit(ctx_);
  double mae = model.ValidationMae(wl_.queries, wl_.test);
  EXPECT_LT(mae, ConstantPredictorMae());
}

TEST_F(SelNetFixture, CtIsConsistentOnDenseThresholdGrids) {
  SelNetCt model(SmallConfig());
  model.Fit(ctx_);
  util::Rng rng(4);
  for (int trial = 0; trial < 5; ++trial) {
    size_t qi = static_cast<size_t>(rng.UniformInt(0, wl_.queries.rows() - 1));
    size_t grid = 64;
    Matrix x(grid, 8), t(grid, 1);
    for (size_t i = 0; i < grid; ++i) {
      std::copy(wl_.queries.row(qi), wl_.queries.row(qi) + 8, x.row(i));
      t(i, 0) = wl_.tmax * static_cast<float>(i) / static_cast<float>(grid - 1);
    }
    Matrix yhat = model.Predict(x, t);
    for (size_t i = 1; i < grid; ++i) {
      EXPECT_GE(yhat(i, 0) + 1e-3f, yhat(i - 1, 0))
          << "violation at step " << i << " trial " << trial;
    }
  }
}

TEST_F(SelNetFixture, PredictionsAreNonNegative) {
  SelNetCt model(SmallConfig());
  model.Fit(ctx_);
  data::Batch b = data::MaterializeAll(wl_.queries, wl_.test);
  Matrix yhat = model.Predict(b.x, b.t);
  for (size_t i = 0; i < yhat.size(); ++i) EXPECT_GE(yhat.data()[i], 0.0f);
}

TEST_F(SelNetFixture, ControlPointsDifferAcrossQueriesForCt) {
  SelNetCt model(SmallConfig());
  model.Fit(ctx_);
  std::vector<float> tau_a, p_a, tau_b, p_b;
  model.ControlPoints(wl_.queries.row(0), &tau_a, &p_a);
  model.ControlPoints(wl_.queries.row(1), &tau_b, &p_b);
  ASSERT_EQ(tau_a.size(), tau_b.size());
  float max_diff = 0.0f;
  for (size_t i = 0; i < tau_a.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(tau_a[i] - tau_b[i]));
  }
  EXPECT_GT(max_diff, 1e-6f);  // query-dependent knot placement
}

TEST_F(SelNetFixture, AdCtControlPointsAreShared) {
  SelNetConfig cfg = SmallConfig();
  cfg.query_dependent_tau = false;
  SelNetCt model(cfg);
  model.Fit(ctx_);
  std::vector<float> tau_a, p_a, tau_b, p_b;
  model.ControlPoints(wl_.queries.row(0), &tau_a, &p_a);
  model.ControlPoints(wl_.queries.row(1), &tau_b, &p_b);
  for (size_t i = 0; i < tau_a.size(); ++i) {
    EXPECT_NEAR(tau_a[i], tau_b[i], 1e-5f);
  }
}

TEST_F(SelNetFixture, ParamsSerializeRoundTrip) {
  SelNetCt a(SmallConfig());
  SelNetCt b(SmallConfig());
  a.Fit(ctx_);
  std::string path = ::testing::TempDir() + "/selnet.bin";
  ASSERT_TRUE(nn::SaveParams(a.Params(), path).ok());
  ASSERT_TRUE(nn::LoadParams(path, b.Params()).ok());
  data::Batch batch = data::MaterializeAll(wl_.queries, wl_.test);
  Matrix ya = a.Predict(batch.x, batch.t);
  Matrix yb = b.Predict(batch.x, batch.t);
  for (size_t i = 0; i < ya.size(); ++i) {
    EXPECT_FLOAT_EQ(ya.data()[i], yb.data()[i]);
  }
  std::remove(path.c_str());
}

TEST_F(SelNetFixture, IncrementalFitDoesNotDegradeValidation) {
  SelNetCt model(SmallConfig());
  model.Fit(ctx_);
  double before = model.ValidationMae(wl_.queries, wl_.valid);
  size_t epochs = model.IncrementalFit(ctx_, /*patience=*/2, /*max_epochs=*/6);
  double after = model.ValidationMae(wl_.queries, wl_.valid);
  EXPECT_GT(epochs, 0u);
  EXPECT_LE(after, before + 1e-6);  // best-snapshot restore guarantees this
}

TEST_F(SelNetFixture, PartitionedCoversLocalLabelSum) {
  // Exact local selectivities must sum to the global label — the identity of
  // Observation 1 that the partitioned model's training relies on.
  PartitionedConfig cfg;
  cfg.base = SmallConfig();
  cfg.partition.k = 3;
  SelNetPartitioned model(cfg);
  model.Fit(ctx_);
  const auto& part = model.partitioning();
  for (size_t i = 0; i < std::min<size_t>(wl_.test.size(), 40); ++i) {
    const auto& s = wl_.test[i];
    size_t total = 0;
    std::vector<size_t> live = db_->LiveIds();
    for (size_t c = 0; c < part.num_clusters(); ++c) {
      for (size_t row : part.cluster_members[c]) {
        float d = data::Distance(wl_.queries.row(s.query_id),
                                 db_->vector(live[row]), 8,
                                 data::Metric::kEuclidean);
        if (d <= s.t) ++total;
      }
    }
    EXPECT_EQ(total, static_cast<size_t>(s.y));
  }
}

TEST_F(SelNetFixture, PartitionedIsConsistent) {
  PartitionedConfig cfg;
  cfg.base = SmallConfig();
  cfg.partition.k = 2;
  SelNetPartitioned model(cfg);
  model.Fit(ctx_);
  size_t grid = 48;
  Matrix x(grid, 8), t(grid, 1);
  for (size_t i = 0; i < grid; ++i) {
    std::copy(wl_.queries.row(3), wl_.queries.row(3) + 8, x.row(i));
    t(i, 0) = wl_.tmax * static_cast<float>(i) / static_cast<float>(grid - 1);
  }
  Matrix yhat = model.Predict(x, t);
  for (size_t i = 1; i < grid; ++i) {
    EXPECT_GE(yhat(i, 0) + 1e-3f, yhat(i - 1, 0));
  }
}

TEST_F(SelNetFixture, PartitionedBeatsConstantPredictor) {
  PartitionedConfig cfg;
  cfg.base = SmallConfig();
  cfg.partition.k = 3;
  SelNetPartitioned model(cfg);
  model.Fit(ctx_);
  data::Batch b = data::MaterializeAll(wl_.queries, wl_.test);
  Matrix yhat = model.Predict(b.x, b.t);
  double mae = 0.0;
  for (size_t i = 0; i < b.y.size(); ++i) {
    mae += std::fabs(static_cast<double>(yhat(i, 0)) - b.y(i, 0));
  }
  mae /= static_cast<double>(b.y.size());
  EXPECT_LT(mae, ConstantPredictorMae());
}

TEST_F(SelNetFixture, PartitionedMaskZeroesFarClusters) {
  PartitionedConfig cfg;
  cfg.base = SmallConfig();
  cfg.partition.k = 3;
  SelNetPartitioned model(cfg);
  model.Fit(ctx_);
  // With a tiny threshold, at least one cluster should usually be excluded.
  const auto& part = model.partitioning();
  size_t excluded = 0, total = 0;
  for (size_t q = 0; q < 10; ++q) {
    std::vector<uint8_t> fc = part.Intersects(wl_.queries.row(q), 1e-4f);
    for (uint8_t m : fc) {
      ++total;
      if (m == 0) ++excluded;
    }
  }
  EXPECT_GT(excluded, 0u);
  EXPECT_LT(excluded, total);  // the home cluster is always flagged
}

}  // namespace
}  // namespace selnet::core
