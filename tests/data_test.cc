#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <set>

#include "data/database.h"
#include "data/distance.h"
#include "data/synthetic.h"
#include "data/workload.h"

namespace selnet::data {
namespace {

using tensor::Matrix;

TEST(DistanceTest, EuclideanBasics) {
  std::vector<float> a = {0, 0, 0};
  std::vector<float> b = {3, 4, 0};
  EXPECT_FLOAT_EQ(Distance(a.data(), b.data(), 3, Metric::kEuclidean), 5.0f);
  EXPECT_FLOAT_EQ(Distance(a.data(), a.data(), 3, Metric::kEuclidean), 0.0f);
}

TEST(DistanceTest, CosineBasics) {
  std::vector<float> a = {1, 0};
  std::vector<float> b = {0, 1};
  std::vector<float> c = {2, 0};
  EXPECT_NEAR(Distance(a.data(), b.data(), 2, Metric::kCosine), 1.0f, 1e-6f);
  EXPECT_NEAR(Distance(a.data(), c.data(), 2, Metric::kCosine), 0.0f, 1e-6f);
  std::vector<float> d = {-1, 0};
  EXPECT_NEAR(Distance(a.data(), d.data(), 2, Metric::kCosine), 2.0f, 1e-6f);
}

TEST(DistanceTest, CosineIsScaleInvariant) {
  util::Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    Matrix v = Matrix::Gaussian(2, 8, &rng);
    float d1 = RowDistance(v, 0, v, 1, Metric::kCosine);
    Matrix w = v;
    for (size_t c = 0; c < 8; ++c) w(0, c) *= 5.0f;
    float d2 = RowDistance(w, 0, w, 1, Metric::kCosine);
    EXPECT_NEAR(d1, d2, 1e-5f);
  }
}

TEST(DistanceTest, EuclideanTriangleInequality) {
  util::Rng rng(2);
  Matrix v = Matrix::Gaussian(3, 10, &rng);
  float ab = RowDistance(v, 0, v, 1, Metric::kEuclidean);
  float bc = RowDistance(v, 1, v, 2, Metric::kEuclidean);
  float ac = RowDistance(v, 0, v, 2, Metric::kEuclidean);
  EXPECT_LE(ac, ab + bc + 1e-5f);
}

TEST(DistanceTest, CosineEuclideanEquivalenceOnUnitVectors) {
  util::Rng rng(3);
  Matrix v = Matrix::Gaussian(10, 6, &rng);
  NormalizeRows(&v);
  for (size_t i = 0; i + 1 < v.rows(); i += 2) {
    float dc = RowDistance(v, i, v, i + 1, Metric::kCosine);
    float de = RowDistance(v, i, v, i + 1, Metric::kEuclidean);
    // cos distance = ||u-v||^2 / 2 on the unit sphere.
    EXPECT_NEAR(dc, de * de / 2.0f, 1e-4f);
    EXPECT_NEAR(CosineToEuclideanThreshold(dc), de, 1e-4f);
    EXPECT_NEAR(EuclideanToCosineThreshold(de), dc, 1e-4f);
  }
}

TEST(DistanceTest, NormalizeRowsMakesUnitVectors) {
  util::Rng rng(4);
  Matrix v = Matrix::Gaussian(5, 7, &rng, 3.0f);
  NormalizeRows(&v);
  for (size_t r = 0; r < v.rows(); ++r) {
    float norm = 0.0f;
    for (size_t c = 0; c < v.cols(); ++c) norm += v(r, c) * v(r, c);
    EXPECT_NEAR(std::sqrt(norm), 1.0f, 1e-5f);
  }
}

TEST(SyntheticTest, GeneratesRequestedShape) {
  SyntheticSpec spec;
  spec.n = 500;
  spec.dim = 10;
  Matrix m = GenerateMixture(spec);
  EXPECT_EQ(m.rows(), 500u);
  EXPECT_EQ(m.cols(), 10u);
  EXPECT_TRUE(m.AllFinite());
}

TEST(SyntheticTest, DeterministicForFixedSeed) {
  SyntheticSpec spec;
  spec.n = 100;
  spec.dim = 5;
  Matrix a = GenerateMixture(spec);
  Matrix b = GenerateMixture(spec);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(SyntheticTest, NormalizedSpecsLandOnSphere) {
  util::ScaleConfig cfg;
  cfg.n = 200;
  cfg.dim = 8;
  SyntheticSpec spec = SpecFor(Corpus::kFaceLike, cfg);
  EXPECT_TRUE(spec.normalize);
  Matrix m = GenerateMixture(spec);
  for (size_t r = 0; r < m.rows(); ++r) {
    float norm = 0.0f;
    for (size_t c = 0; c < m.cols(); ++c) norm += m(r, c) * m(r, c);
    EXPECT_NEAR(norm, 1.0f, 1e-4f);
  }
}

TEST(SyntheticTest, YoutubeUsesDoubleDim) {
  util::ScaleConfig cfg;
  cfg.dim = 8;
  EXPECT_EQ(SpecFor(Corpus::kYoutubeLike, cfg).dim, 16u);
}

TEST(SyntheticTest, DrawFromSameMixtureMatchesDistribution) {
  SyntheticSpec spec;
  spec.n = 400;
  spec.dim = 4;
  spec.num_clusters = 3;
  Matrix base = GenerateMixture(spec);
  Matrix extra = DrawFromSameMixture(spec, 100, /*stream_seed=*/99);
  EXPECT_EQ(extra.rows(), 100u);
  // New draws should land near the same cluster centers: nearest-base-point
  // distance should be comparable to intra-dataset spacing, not far away.
  double max_min_dist = 0.0;
  for (size_t i = 0; i < extra.rows(); ++i) {
    float best = std::numeric_limits<float>::max();
    for (size_t j = 0; j < base.rows(); ++j) {
      best = std::min(best, Distance(extra.row(i), base.row(j), 4,
                                     Metric::kEuclidean));
    }
    max_min_dist = std::max(max_min_dist, static_cast<double>(best));
  }
  EXPECT_LT(max_min_dist, 2.0);
}

TEST(DatabaseTest, InsertDeleteLifecycle) {
  Matrix m = Matrix::Ones(3, 2);
  Database db(std::move(m), Metric::kEuclidean);
  EXPECT_EQ(db.size(), 3u);
  size_t id = db.Insert({5.0f, 5.0f});
  EXPECT_EQ(id, 3u);
  EXPECT_EQ(db.size(), 4u);
  db.Delete(0);
  EXPECT_EQ(db.size(), 3u);
  EXPECT_FALSE(db.alive(0));
  EXPECT_TRUE(db.alive(3));
  auto live = db.LiveIds();
  EXPECT_EQ(live.size(), 3u);
  EXPECT_EQ(live[0], 1u);
}

TEST(DatabaseTest, ExactSelectivityCountsCorrectly) {
  Matrix m(4, 1);
  m(0, 0) = 0.0f;
  m(1, 0) = 1.0f;
  m(2, 0) = 2.0f;
  m(3, 0) = 3.0f;
  Database db(std::move(m), Metric::kEuclidean);
  float q = 0.0f;
  EXPECT_EQ(db.ExactSelectivity(&q, 1.5f), 2u);
  EXPECT_EQ(db.ExactSelectivity(&q, 3.0f), 4u);  // <= is inclusive
  db.Delete(1);
  EXPECT_EQ(db.ExactSelectivity(&q, 1.5f), 1u);
}

TEST(DatabaseTest, DenseViewSkipsDeleted) {
  Matrix m(3, 1);
  m(0, 0) = 10.0f;
  m(1, 0) = 20.0f;
  m(2, 0) = 30.0f;
  Database db(std::move(m), Metric::kEuclidean);
  db.Delete(1);
  Matrix dense = db.DenseView();
  EXPECT_EQ(dense.rows(), 2u);
  EXPECT_FLOAT_EQ(dense(0, 0), 10.0f);
  EXPECT_FLOAT_EQ(dense(1, 0), 30.0f);
}

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticSpec spec;
    spec.n = 800;
    spec.dim = 6;
    spec.num_clusters = 5;
    db_ = std::make_unique<Database>(GenerateMixture(spec), Metric::kEuclidean);
    spec_.num_queries = 30;
    spec_.w = 8;
    wl_ = GenerateWorkload(*db_, spec_);
  }
  std::unique_ptr<Database> db_;
  WorkloadSpec spec_;
  Workload wl_;
};

TEST_F(WorkloadTest, SampleCountsAndSplit) {
  size_t total = wl_.train.size() + wl_.valid.size() + wl_.test.size();
  EXPECT_EQ(total, spec_.num_queries * spec_.w);
  EXPECT_EQ(wl_.train.size(), 24u * spec_.w);  // 80% of 30 queries
  EXPECT_EQ(wl_.valid.size(), 3u * spec_.w);
  EXPECT_EQ(wl_.test.size(), 3u * spec_.w);
}

TEST_F(WorkloadTest, SplitsAreQueryDisjoint) {
  std::set<uint32_t> train_q, valid_q, test_q;
  for (const auto& s : wl_.train) train_q.insert(s.query_id);
  for (const auto& s : wl_.valid) valid_q.insert(s.query_id);
  for (const auto& s : wl_.test) test_q.insert(s.query_id);
  for (uint32_t q : valid_q) EXPECT_EQ(train_q.count(q), 0u);
  for (uint32_t q : test_q) {
    EXPECT_EQ(train_q.count(q), 0u);
    EXPECT_EQ(valid_q.count(q), 0u);
  }
}

TEST_F(WorkloadTest, LabelsAreExact) {
  for (const auto& s : wl_.test) {
    size_t exact = db_->ExactSelectivity(wl_.queries.row(s.query_id), s.t);
    EXPECT_EQ(static_cast<size_t>(s.y), exact);
  }
}

TEST_F(WorkloadTest, LabelsMonotoneInThresholdPerQuery) {
  // Samples of the same query were generated with increasing target
  // selectivity, so (t, y) must be jointly non-decreasing.
  std::map<uint32_t, std::vector<std::pair<float, float>>> per_query;
  for (const auto& s : wl_.train) per_query[s.query_id].push_back({s.t, s.y});
  for (auto& [q, pairs] : per_query) {
    std::sort(pairs.begin(), pairs.end());
    for (size_t i = 1; i < pairs.size(); ++i) {
      EXPECT_GE(pairs[i].second, pairs[i - 1].second);
    }
  }
}

TEST_F(WorkloadTest, TmaxCoversAllThresholds) {
  for (const auto& s : wl_.train) EXPECT_LE(s.t, wl_.tmax);
  for (const auto& s : wl_.test) EXPECT_LE(s.t, wl_.tmax);
}

TEST_F(WorkloadTest, SelectivityLadderSpansOrdersOfMagnitude) {
  float max_y = 0.0f, min_y = std::numeric_limits<float>::max();
  for (const auto& s : wl_.train) {
    max_y = std::max(max_y, s.y);
    min_y = std::min(min_y, s.y);
  }
  EXPECT_LE(min_y, 2.0f);                       // ladder starts at 1
  EXPECT_GE(max_y, 0.008f * 800);               // ladder tops near n/100
}

TEST_F(WorkloadTest, PatchLabelsMatchesExactRelabel) {
  // Insert a vector, patch incrementally, compare against full recompute.
  std::vector<float> v(6, 0.05f);
  std::vector<QuerySample> patched = wl_.train;
  db_->Insert(v);
  PatchLabels(wl_.queries, Metric::kEuclidean, v.data(), +1, &patched);
  std::vector<QuerySample> relabeled = wl_.train;
  RelabelExact(*db_, wl_.queries, &relabeled);
  for (size_t i = 0; i < patched.size(); ++i) {
    EXPECT_FLOAT_EQ(patched[i].y, relabeled[i].y) << "sample " << i;
  }
}

TEST_F(WorkloadTest, DeletePatchMatchesExactRelabel) {
  size_t victim = db_->LiveIds()[5];
  std::vector<float> v(db_->vector(victim), db_->vector(victim) + 6);
  std::vector<QuerySample> patched = wl_.train;
  db_->Delete(victim);
  PatchLabels(wl_.queries, Metric::kEuclidean, v.data(), -1, &patched);
  std::vector<QuerySample> relabeled = wl_.train;
  RelabelExact(*db_, wl_.queries, &relabeled);
  for (size_t i = 0; i < patched.size(); ++i) {
    EXPECT_FLOAT_EQ(patched[i].y, relabeled[i].y);
  }
}

TEST_F(WorkloadTest, MaterializeBatchRoundTrip) {
  std::vector<size_t> idx = {0, 5, 7};
  Batch b = MaterializeBatch(wl_.queries, wl_.train, idx);
  EXPECT_EQ(b.x.rows(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    const QuerySample& s = wl_.train[idx[i]];
    EXPECT_FLOAT_EQ(b.t(i, 0), s.t);
    EXPECT_FLOAT_EQ(b.y(i, 0), s.y);
    for (size_t c = 0; c < 6; ++c) {
      EXPECT_FLOAT_EQ(b.x(i, c), wl_.queries(s.query_id, c));
    }
  }
}

TEST(BetaWorkloadTest, LabelsExactAndThresholdsInRange) {
  SyntheticSpec spec;
  spec.n = 600;
  spec.dim = 5;
  Database db(GenerateMixture(spec), Metric::kEuclidean);
  WorkloadSpec wspec;
  wspec.num_queries = 20;
  wspec.w = 6;
  Workload wl = GenerateBetaWorkload(db, wspec);
  EXPECT_EQ(wl.train.size() + wl.valid.size() + wl.test.size(), 120u);
  for (const auto& s : wl.train) {
    EXPECT_GE(s.t, 0.0f);
    EXPECT_LE(s.t, wl.tmax);
    size_t exact = db.ExactSelectivity(wl.queries.row(s.query_id), s.t);
    EXPECT_EQ(static_cast<size_t>(s.y), exact);
  }
}

}  // namespace
}  // namespace selnet::data
