#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>

#include "nn/autoencoder.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "tensor/blas.h"

namespace selnet::nn {
namespace {

using tensor::Matrix;

TEST(LinearTest, ShapesAndForward) {
  util::Rng rng(1);
  Linear lin(4, 3, &rng);
  EXPECT_EQ(lin.in_dim(), 4u);
  EXPECT_EQ(lin.out_dim(), 3u);
  ag::Var x = ag::Constant(Matrix::Ones(5, 4));
  ag::Var y = lin.Forward(x);
  EXPECT_EQ(y->rows(), 5u);
  EXPECT_EQ(y->cols(), 3u);
}

TEST(LinearTest, BiasIsApplied) {
  util::Rng rng(2);
  Linear lin(2, 2, &rng);
  lin.weight()->value.Fill(0.0f);
  lin.bias()->value(0, 0) = 3.0f;
  lin.bias()->value(0, 1) = -1.0f;
  ag::Var y = lin.Forward(ag::Constant(Matrix::Ones(1, 2)));
  EXPECT_FLOAT_EQ(y->value(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(y->value(0, 1), -1.0f);
}

TEST(MlpTest, ParamCountMatchesArchitecture) {
  util::Rng rng(3);
  Mlp mlp({10, 20, 5}, &rng);
  // (10*20 + 20) + (20*5 + 5) = 220 + 105.
  EXPECT_EQ(mlp.NumParams(), 325u);
  EXPECT_EQ(mlp.Params().size(), 4u);
}

TEST(MlpTest, OutputActivationApplies) {
  util::Rng rng(4);
  Mlp mlp({3, 8, 2}, &rng, Activation::kRelu, Activation::kSoftplus);
  ag::Var y = mlp.Forward(ag::Constant(Matrix::Gaussian(10, 3, &rng)));
  for (size_t i = 0; i < y->value.size(); ++i) {
    EXPECT_GT(y->value.data()[i], 0.0f);  // softplus is strictly positive
  }
}

// Optimizers must drive a convex quadratic to its minimum.
class OptimizerConvergence : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerConvergence, MinimizesQuadratic) {
  // minimize ||p - c||^2 for fixed c.
  util::Rng rng(5);
  Matrix target = Matrix::Uniform(3, 3, &rng, -2.0f, 2.0f);
  ag::Var p = ag::Param(Matrix::Zeros(3, 3));
  std::unique_ptr<Optimizer> opt;
  switch (GetParam()) {
    case 0: opt = std::make_unique<Sgd>(std::vector<ag::Var>{p}, 0.1f); break;
    case 1: opt = std::make_unique<Sgd>(std::vector<ag::Var>{p}, 0.05f, 0.9f); break;
    default: opt = std::make_unique<Adam>(std::vector<ag::Var>{p}, 0.1f); break;
  }
  for (int i = 0; i < 300; ++i) {
    opt->ZeroGrad();
    ag::Var loss = ag::MseLoss(p, ag::Constant(target));
    ag::Backward(loss);
    opt->Step();
  }
  for (size_t i = 0; i < target.size(); ++i) {
    EXPECT_NEAR(p->value.data()[i], target.data()[i], 0.05f);
  }
}

INSTANTIATE_TEST_SUITE_P(SgdMomentumAdam, OptimizerConvergence,
                         ::testing::Values(0, 1, 2));

TEST(OptimizerTest, ClipGradBoundsEntries) {
  ag::Var p = ag::Param(Matrix::Full(1, 1, 100.0f));
  Adam opt({p}, 0.1f);
  opt.ZeroGrad();
  ag::Var loss = ag::MseLoss(p, ag::Constant(Matrix::Zeros(1, 1)));
  ag::Backward(loss);
  EXPECT_GT(p->grad(0, 0), 5.0f);
  opt.ClipGrad(5.0f);
  EXPECT_FLOAT_EQ(p->grad(0, 0), 5.0f);
}

TEST(OptimizerTest, AdamWeightDecayShrinksWeights) {
  ag::Var p = ag::Param(Matrix::Full(1, 1, 1.0f));
  Adam opt({p}, 0.01f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.1f);
  for (int i = 0; i < 50; ++i) {
    opt.ZeroGrad();  // zero gradient; only decay acts
    opt.Step();
  }
  EXPECT_LT(p->value(0, 0), 1.0f);
}

TEST(AutoencoderTest, PretrainReducesReconstructionLoss) {
  util::Rng rng(6);
  // Data on a 2-D linear subspace of R^6: easily compressible.
  Matrix basis = Matrix::Gaussian(2, 6, &rng);
  Matrix coef = Matrix::Gaussian(200, 2, &rng);
  Matrix data = tensor::MatMul(coef, basis);
  Autoencoder ae(6, 16, 2, &rng);
  double before = ae.ReconstructionLoss(ag::Constant(data))->value(0, 0);
  ae.Pretrain(data, /*epochs=*/30, /*batch_size=*/32, 3e-3f, &rng);
  double after = ae.ReconstructionLoss(ag::Constant(data))->value(0, 0);
  EXPECT_LT(after, before * 0.5);
}

TEST(AutoencoderTest, EncodeShape) {
  util::Rng rng(7);
  Autoencoder ae(5, 8, 3, &rng);
  ag::Var z = ae.Encode(ag::Constant(Matrix::Ones(4, 5)));
  EXPECT_EQ(z->rows(), 4u);
  EXPECT_EQ(z->cols(), 3u);
  EXPECT_EQ(ae.latent_dim(), 3u);
}

TEST(SerializeTest, RoundTrip) {
  util::Rng rng(8);
  Mlp a({4, 6, 2}, &rng);
  Mlp b({4, 6, 2}, &rng);  // different init
  std::string path = ::testing::TempDir() + "/params.bin";
  ASSERT_TRUE(SaveParams(a.Params(), path).ok());
  ASSERT_TRUE(LoadParams(path, b.Params()).ok());
  auto pa = a.Params(), pb = b.Params();
  for (size_t i = 0; i < pa.size(); ++i) {
    for (size_t j = 0; j < pa[i]->value.size(); ++j) {
      EXPECT_FLOAT_EQ(pa[i]->value.data()[j], pb[i]->value.data()[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchRejected) {
  util::Rng rng(9);
  Mlp a({4, 6, 2}, &rng);
  Mlp b({4, 7, 2}, &rng);
  std::string path = ::testing::TempDir() + "/params2.bin";
  ASSERT_TRUE(SaveParams(a.Params(), path).ok());
  util::Status st = LoadParams(path, b.Params());
  EXPECT_FALSE(st.ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsIOError) {
  util::Rng rng(10);
  Mlp a({2, 2}, &rng);
  util::Status st = LoadParams("/nonexistent/dir/params.bin", a.Params());
  EXPECT_EQ(st.code(), util::StatusCode::kIoError);
}

TEST(SerializeTest, FlippedByteFailsWithParameterAndOffset) {
  util::Rng rng(11);
  Mlp a({4, 6, 2}, &rng);
  Mlp b({4, 6, 2}, &rng);
  std::string path = ::testing::TempDir() + "/params_flip.bin";
  ASSERT_TRUE(SaveParams(a.Params(), path).ok());

  // Flip one bit inside parameter 0's float data. Layout: 4 magic + 4
  // version + 8 count = 16, then parameter 0's record (16-byte shape header
  // + floats + crc) starting at offset 16.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 16 + 16 + 2, SEEK_SET), 0);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
  std::fputc(c ^ 0x01, f);
  std::fclose(f);

  util::Status st = LoadParams(path, b.Params());
  EXPECT_EQ(st.code(), util::StatusCode::kIoError);
  // The error localizes the damage: path, parameter index, byte offset.
  EXPECT_NE(st.message().find(path), std::string::npos) << st.ToString();
  EXPECT_NE(st.message().find("checksum mismatch for parameter 0"),
            std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("byte offset 16"), std::string::npos)
      << st.ToString();
  std::remove(path.c_str());
}

TEST(SerializeTest, TruncatedChecksumIsIOError) {
  util::Rng rng(12);
  Mlp a({3, 2}, &rng);
  std::string path = ::testing::TempDir() + "/params_trunc.bin";
  ASSERT_TRUE(SaveParams(a.Params(), path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size - 2), 0);  // Clip the final CRC.
  util::Status st = LoadParams(path, a.Params());
  EXPECT_EQ(st.code(), util::StatusCode::kIoError);
  EXPECT_NE(st.message().find("truncated"), std::string::npos)
      << st.ToString();
  std::remove(path.c_str());
}

TEST(SerializeTest, Version1FilesWithoutChecksumsStillLoad) {
  util::Rng rng(13);
  Mlp a({4, 6, 2}, &rng);
  Mlp b({4, 6, 2}, &rng);  // different init
  std::string path = ::testing::TempDir() + "/params_v1.bin";
  // Hand-write the pre-checksum v1 format.
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("SELN", 1, 4, f);
  uint32_t version = 1;
  std::fwrite(&version, sizeof(version), 1, f);
  auto pa = a.Params();
  uint64_t count = pa.size();
  std::fwrite(&count, sizeof(count), 1, f);
  for (const auto& p : pa) {
    uint64_t rows = p->value.rows(), cols = p->value.cols();
    std::fwrite(&rows, sizeof(rows), 1, f);
    std::fwrite(&cols, sizeof(cols), 1, f);
    std::fwrite(p->value.data(), sizeof(float), p->value.size(), f);
  }
  std::fclose(f);

  ASSERT_TRUE(LoadParams(path, b.Params()).ok());
  auto pb = b.Params();
  for (size_t i = 0; i < pa.size(); ++i) {
    for (size_t j = 0; j < pa[i]->value.size(); ++j) {
      EXPECT_EQ(pa[i]->value.data()[j], pb[i]->value.data()[j]);
    }
  }
  std::remove(path.c_str());
}

// ----------------------------------------------- packed-weight staleness ---

// Batched forwards (>= tensor::kGemmPackMinRows rows) run against cached
// packed weight panels; these tests pin the invalidation contract at every
// value-mutation point. The reference is a raw Gemm on the current weights,
// which is bit-identical to the prepacked path by the kernel contract — any
// stale pack shows up as an exact-inequality failure.
Matrix LinearReference(const Linear& lin, const Matrix& x) {
  Matrix out(x.rows(), lin.out_dim());
  tensor::Gemm(x, false, lin.weight()->value, false, 1.0f, 0.0f, &out);
  tensor::AddRowVectorInPlace(&out, lin.bias()->value);
  return out;
}

void ExpectExactlyEqual(const Matrix& a, const Matrix& b) {
  ASSERT_TRUE(a.SameShape(b));
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "flat index " << i;
  }
}

TEST(PackInvalidationTest, OptimizerStepDropsStalePacks) {
  util::Rng rng(21);
  Linear lin(8, 8, &rng);
  Matrix x = Matrix::Gaussian(tensor::kGemmPackMinRows, 8, &rng);
  Matrix before = lin.Forward(ag::Constant(x))->value;  // Warms the pack.
  ExpectExactlyEqual(before, LinearReference(lin, x));

  Sgd sgd(lin.Params(), /*lr=*/0.5f);
  for (const auto& p : lin.Params()) {
    p->EnsureGrad();
    p->grad.Fill(1.0f);
  }
  sgd.Step();
  Matrix after_sgd = lin.Forward(ag::Constant(x))->value;
  ExpectExactlyEqual(after_sgd, LinearReference(lin, x));

  Adam adam(lin.Params(), /*lr=*/0.1f);
  for (const auto& p : lin.Params()) p->grad.Fill(0.5f);
  adam.Step();
  Matrix after_adam = lin.Forward(ag::Constant(x))->value;
  ExpectExactlyEqual(after_adam, LinearReference(lin, x));

  // Sanity: the steps actually moved the weights.
  EXPECT_NE(before(0, 0), after_sgd(0, 0));
  EXPECT_NE(after_sgd(0, 0), after_adam(0, 0));
}

TEST(PackInvalidationTest, LoadParamsDropsStalePacks) {
  util::Rng rng(22);
  Linear lin(6, 10, &rng);
  Linear other(6, 10, &rng);  // Different init, same shapes.
  Matrix x = Matrix::Gaussian(tensor::kGemmPackMinRows, 6, &rng);
  Matrix before = lin.Forward(ag::Constant(x))->value;  // Warms the pack.

  const char* path = "pack_invalidation_params.bin";
  ASSERT_TRUE(SaveParams(other.Params(), path).ok());
  ASSERT_TRUE(LoadParams(path, lin.Params()).ok());
  std::remove(path);

  Matrix after = lin.Forward(ag::Constant(x))->value;
  ExpectExactlyEqual(after, LinearReference(other, x));
  EXPECT_NE(before(0, 0), after(0, 0));
}

TEST(PackInvalidationTest, RestoreParamsDropsStalePacks) {
  util::Rng rng(23);
  Linear lin(5, 7, &rng);
  Matrix x = Matrix::Gaussian(tensor::kGemmPackMinRows, 5, &rng);
  std::vector<Matrix> snap = SnapshotParams(lin.Params());
  Matrix before = lin.Forward(ag::Constant(x))->value;  // Warms the pack.

  for (const auto& p : lin.Params()) {
    p->value.Apply([](float v) { return v * 2.0f + 0.1f; });
    p->pack_cache.Invalidate();
  }
  Matrix perturbed = lin.Forward(ag::Constant(x))->value;
  EXPECT_NE(before(0, 0), perturbed(0, 0));

  RestoreParams(lin.Params(), snap);
  Matrix after = lin.Forward(ag::Constant(x))->value;
  ExpectExactlyEqual(after, before);
}

TEST(ModuleTest, SnapshotRestoreRoundTrip) {
  util::Rng rng(11);
  Mlp mlp({3, 4, 1}, &rng);
  auto snap = SnapshotParams(mlp.Params());
  float orig = mlp.Params()[0]->value(0, 0);
  mlp.Params()[0]->value.Fill(99.0f);
  RestoreParams(mlp.Params(), snap);
  EXPECT_FLOAT_EQ(mlp.Params()[0]->value(0, 0), orig);
}

}  // namespace
}  // namespace selnet::nn
