#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics.h"
#include "eval/monotonicity.h"

namespace selnet::eval {
namespace {

using tensor::Matrix;

TEST(MetricsTest, PerfectPredictionIsZeroError) {
  Matrix y(3, 1);
  y(0, 0) = 1;
  y(1, 0) = 10;
  y(2, 0) = 100;
  Errors e = ComputeErrors(y, y);
  EXPECT_DOUBLE_EQ(e.mse, 0.0);
  EXPECT_DOUBLE_EQ(e.mae, 0.0);
  EXPECT_DOUBLE_EQ(e.mape, 0.0);
}

TEST(MetricsTest, KnownValues) {
  Matrix y(2, 1), yhat(2, 1);
  y(0, 0) = 10.0f;
  y(1, 0) = 20.0f;
  yhat(0, 0) = 12.0f;  // err 2
  yhat(1, 0) = 16.0f;  // err -4
  Errors e = ComputeErrors(yhat, y);
  EXPECT_NEAR(e.mse, (4.0 + 16.0) / 2.0, 1e-9);
  EXPECT_NEAR(e.mae, (2.0 + 4.0) / 2.0, 1e-9);
  EXPECT_NEAR(e.mape, (0.2 + 0.2) / 2.0, 1e-9);
}

TEST(MetricsTest, MapeGuardsZeroLabels) {
  Matrix y(1, 1), yhat(1, 1);
  y(0, 0) = 0.0f;
  yhat(0, 0) = 5.0f;
  Errors e = ComputeErrors(yhat, y);
  EXPECT_NEAR(e.mape, 5.0, 1e-9);  // divided by max(y, 1) = 1
}

// Synthetic estimators for the monotonicity measure.
class MonotoneStub : public Estimator {
 public:
  std::string Name() const override { return "stub-mono"; }
  bool IsConsistent() const override { return true; }
  void Fit(const TrainContext&) override {}
  Matrix Predict(const Matrix& x, const Matrix& t) override {
    Matrix out(x.rows(), 1);
    for (size_t r = 0; r < x.rows(); ++r) out(r, 0) = 3.0f * t(r, 0);
    return out;
  }
};

class ZigzagStub : public Estimator {
 public:
  std::string Name() const override { return "stub-zigzag"; }
  bool IsConsistent() const override { return false; }
  void Fit(const TrainContext&) override {}
  Matrix Predict(const Matrix& x, const Matrix& t) override {
    Matrix out(x.rows(), 1);
    for (size_t r = 0; r < x.rows(); ++r) {
      out(r, 0) = std::sin(20.0f * t(r, 0));  // wildly non-monotone
    }
    return out;
  }
};

TEST(MonotonicityTest, PerfectForMonotoneEstimator) {
  util::Rng rng(1);
  Matrix queries = Matrix::Gaussian(10, 4, &rng);
  MonotoneStub stub;
  double score = EmpiricalMonotonicity(&stub, queries, 5, 1.0f, 30, 7);
  EXPECT_DOUBLE_EQ(score, 100.0);
}

TEST(MonotonicityTest, LowForZigzagEstimator) {
  util::Rng rng(2);
  Matrix queries = Matrix::Gaussian(10, 4, &rng);
  ZigzagStub stub;
  double score = EmpiricalMonotonicity(&stub, queries, 5, 1.0f, 30, 7);
  EXPECT_LT(score, 90.0);
  EXPECT_GT(score, 0.0);
}

}  // namespace
}  // namespace selnet::eval
