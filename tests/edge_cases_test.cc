#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "autograd/gradcheck.h"
#include "baselines/gbdt.h"
#include "core/control_heads.h"
#include "data/synthetic.h"
#include "data/workload.h"
#include "index/cover_tree.h"

namespace selnet {
namespace {

using tensor::Matrix;

// ---------------------------------------------------------------------------
// Cover tree under degenerate inputs
// ---------------------------------------------------------------------------

TEST(CoverTreeEdge, DuplicatePointsAreAllRetrievable) {
  Matrix pts(40, 3);
  for (size_t r = 0; r < 40; ++r) {
    // Ten copies each of four distinct points.
    float base = static_cast<float>(r % 4);
    for (size_t c = 0; c < 3; ++c) pts(r, c) = base;
  }
  idx::CoverTree tree = idx::CoverTree::Build(pts, data::Metric::kEuclidean);
  EXPECT_EQ(tree.size(), 40u);
  EXPECT_TRUE(tree.ValidateInvariants().ok());
  float origin[3] = {0.0f, 0.0f, 0.0f};
  EXPECT_EQ(tree.RangeCount(origin, 0.01f), 10u);   // the ten zero-copies
  EXPECT_EQ(tree.RangeCount(origin, 100.0f), 40u);  // everything
}

TEST(CoverTreeEdge, ZeroRadiusRangeHitsExactMatches) {
  util::Rng rng(1);
  Matrix pts = Matrix::Gaussian(100, 4, &rng);
  idx::CoverTree tree = idx::CoverTree::Build(pts, data::Metric::kEuclidean);
  EXPECT_EQ(tree.RangeCount(pts.row(17), 0.0f), 1u);
}

TEST(CoverTreeEdge, PartitionRatioAboveOneYieldsSingleRegion) {
  // The stop rule ("do not expand nodes smaller than r|D|", Section 5.3)
  // keeps the root intact once r|D| exceeds the tree size.
  util::Rng rng(2);
  Matrix pts = Matrix::Gaussian(50, 3, &rng);
  idx::CoverTree tree = idx::CoverTree::Build(pts, data::Metric::kEuclidean);
  auto regions = tree.PartitionByRatio(1.5);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].members.size(), 50u);
}

// ---------------------------------------------------------------------------
// Autograd edge cases
// ---------------------------------------------------------------------------

TEST(AutogradEdge, PwlGatherZeroWidthSegmentsAreSafe) {
  // All knots coincide: the function is a step; gradients must not be NaN.
  Matrix tau(1, 4, 0.5f), p(1, 4), t(1, 1);
  for (int i = 0; i < 4; ++i) p(0, i) = static_cast<float>(i);
  t(0, 0) = 0.5f;
  ag::Var vtau = ag::Param(tau);
  ag::Var vp = ag::Param(p);
  ag::Var out = ag::PiecewiseLinearGather(vtau, vp, ag::Constant(t));
  EXPECT_TRUE(out->value.AllFinite());
  ag::Backward(ag::SumAll(out));
  EXPECT_TRUE(vtau->grad.AllFinite());
  EXPECT_TRUE(vp->grad.AllFinite());
}

TEST(AutogradEdge, HuberLogLossAtZeroPrediction) {
  Matrix yhat(1, 1, 0.0f), y(1, 1, 100.0f);
  ag::Var vy = ag::Param(yhat);
  ag::Var loss = ag::HuberLogLoss(vy, ag::Constant(y));
  EXPECT_TRUE(loss->value.AllFinite());
  ag::Backward(loss);
  EXPECT_TRUE(vy->grad.AllFinite());
  EXPECT_LT(vy->grad(0, 0), 0.0f);  // pushes the prediction upward
}

TEST(AutogradEdge, NormL2ZeroRowIsUniform) {
  Matrix zero(1, 5);
  ag::Var out = ag::NormL2Rows(ag::Constant(zero));
  for (size_t c = 0; c < 5; ++c) {
    EXPECT_NEAR(out->value(0, c), 0.2f, 1e-6f);  // eps/d over eps
  }
}

TEST(AutogradEdge, TopKEqualsSoftmaxWhenKIsFull) {
  util::Rng rng(3);
  Matrix logits = Matrix::Gaussian(3, 4, &rng);
  ag::Var a = ag::Constant(logits);
  ag::Var full = ag::TopKSoftmaxRows(a, 4);
  ag::Var soft = ag::SoftmaxRows(a);
  for (size_t i = 0; i < full->value.size(); ++i) {
    EXPECT_NEAR(full->value.data()[i], soft->value.data()[i], 1e-5f);
  }
}

TEST(AutogradEdge, CumsumSingleColumnIsIdentity) {
  Matrix m(3, 1);
  m(0, 0) = 1;
  m(1, 0) = 2;
  m(2, 0) = 3;
  ag::Var out = ag::CumsumRows(ag::Constant(m));
  for (size_t r = 0; r < 3; ++r) EXPECT_FLOAT_EQ(out->value(r, 0), m(r, 0));
}

// End-to-end gradient check through the entire SelNet head stack:
// input -> tau head (NormL2 + cumsum) + model M (grouped linear + ReLU +
// cumsum) -> PWL gather -> Huber-log loss.
TEST(AutogradEdge, FullControlHeadGradientCheck) {
  util::Rng rng(4);
  core::HeadsConfig hc;
  hc.input_dim = 5;
  hc.num_control = 4;
  hc.tau_hidden = 6;
  hc.p_hidden = 8;
  hc.embed_h = 3;
  hc.tmax = 2.0f;
  core::ControlHeads heads(hc, &rng);
  Matrix x = Matrix::Gaussian(3, 5, &rng);
  Matrix t(3, 1);
  for (size_t r = 0; r < 3; ++r) {
    t(r, 0) = static_cast<float>(rng.Uniform(0.1, 1.9));
  }
  Matrix y(3, 1);
  for (size_t r = 0; r < 3; ++r) {
    y(r, 0) = static_cast<float>(rng.Uniform(1.0, 50.0));
  }
  auto loss_fn = [&] {
    auto out = heads.Forward(ag::Constant(x));
    ag::Var yhat = ag::PiecewiseLinearGather(out.tau, out.p, ag::Constant(t));
    return ag::HuberLogLoss(yhat, ag::Constant(y));
  };
  // Finite differences can cross PWL segment boundaries, so the tolerance is
  // looser than for smooth ops; the check still catches sign/scale bugs.
  EXPECT_LT(ag::MaxGradError(heads.Params(), loss_fn, 5e-4), 0.08);
}

TEST(AutogradEdge, SoftmaxTauHeadsStayMonotone) {
  // The Section 5.2 ablation (softmax simplex map) must preserve the
  // structural guarantees: tau pinned at 0 / tmax, strictly increasing.
  util::Rng rng(21);
  core::HeadsConfig hc;
  hc.input_dim = 5;
  hc.num_control = 6;
  hc.tau_hidden = 12;
  hc.p_hidden = 16;
  hc.embed_h = 4;
  hc.tmax = 3.0f;
  hc.softmax_tau = true;
  core::ControlHeads heads(hc, &rng);
  auto out = heads.Forward(ag::Constant(Matrix::Gaussian(6, 5, &rng)));
  for (size_t r = 0; r < 6; ++r) {
    EXPECT_FLOAT_EQ(out.tau->value(r, 0), 0.0f);
    EXPECT_NEAR(out.tau->value(r, out.tau->cols() - 1), 3.0f, 1e-4f);
    for (size_t c = 1; c < out.tau->cols(); ++c) {
      EXPECT_GT(out.tau->value(r, c), out.tau->value(r, c - 1));
    }
  }
}

// ---------------------------------------------------------------------------
// GBDT known-answer behaviour
// ---------------------------------------------------------------------------

TEST(GbdtEdge, LearnsAStepFunctionInT) {
  // Labels depend only on t via a step at t=0.5; x is pure noise. A handful
  // of trees must recover the step almost exactly.
  data::SyntheticSpec spec;
  spec.n = 400;
  spec.dim = 4;
  data::Database db(data::GenerateMixture(spec), data::Metric::kEuclidean);
  data::Workload wl;
  wl.metric = data::Metric::kEuclidean;
  util::Rng rng(5);
  wl.queries = Matrix::Gaussian(40, 4, &rng);
  wl.tmax = 1.0f;
  for (uint32_t q = 0; q < 40; ++q) {
    for (int j = 0; j < 8; ++j) {
      data::QuerySample s;
      s.query_id = q;
      s.t = static_cast<float>(rng.Uniform(0.0, 1.0));
      s.y = s.t < 0.5f ? 10.0f : 1000.0f;
      if (q < 32) {
        wl.train.push_back(s);
      } else {
        wl.valid.push_back(s);
      }
    }
  }
  wl.test = wl.valid;
  eval::TrainContext ctx;
  ctx.db = &db;
  ctx.workload = &wl;
  bl::GbdtConfig cfg;
  cfg.num_trees = 40;
  bl::GbdtEstimator gbdt(cfg);
  gbdt.Fit(ctx);
  data::Batch b = data::MaterializeAll(wl.queries, wl.test);
  Matrix yhat = gbdt.Predict(b.x, b.t);
  for (size_t i = 0; i < wl.test.size(); ++i) {
    float expect = wl.test[i].t < 0.5f ? 10.0f : 1000.0f;
    EXPECT_NEAR(yhat(i, 0), expect, expect * 0.25f) << "t=" << wl.test[i].t;
  }
}

TEST(GbdtEdge, ConstantLabelsYieldConstantPrediction) {
  data::SyntheticSpec spec;
  spec.n = 100;
  spec.dim = 3;
  data::Database db(data::GenerateMixture(spec), data::Metric::kEuclidean);
  data::Workload wl;
  util::Rng rng(6);
  wl.queries = Matrix::Gaussian(10, 3, &rng);
  wl.tmax = 1.0f;
  for (uint32_t q = 0; q < 10; ++q) {
    data::QuerySample s;
    s.query_id = q;
    s.t = static_cast<float>(rng.Uniform(0.0, 1.0));
    s.y = 42.0f;
    wl.train.push_back(s);
  }
  eval::TrainContext ctx;
  ctx.db = &db;
  ctx.workload = &wl;
  bl::GbdtEstimator gbdt;
  gbdt.Fit(ctx);
  data::Batch b = data::MaterializeAll(wl.queries, wl.train);
  Matrix yhat = gbdt.Predict(b.x, b.t);
  for (size_t i = 0; i < yhat.size(); ++i) {
    EXPECT_NEAR(yhat.data()[i], 42.0f, 1.0f);
  }
}

// ---------------------------------------------------------------------------
// Cosine workloads end to end
// ---------------------------------------------------------------------------

TEST(CosineWorkloadEdge, LabelsExactAndThresholdsInCosRange) {
  data::SyntheticSpec spec;
  spec.n = 500;
  spec.dim = 8;
  spec.normalize = true;
  data::Database db(data::GenerateMixture(spec), data::Metric::kCosine);
  data::WorkloadSpec wspec;
  wspec.num_queries = 15;
  wspec.w = 6;
  wspec.max_sel_fraction = 0.2;
  data::Workload wl = data::GenerateWorkload(db, wspec);
  for (const auto& s : wl.train) {
    EXPECT_GE(s.t, 0.0f);
    EXPECT_LE(s.t, 2.0f);  // cosine distance range
    size_t exact = db.ExactSelectivity(wl.queries.row(s.query_id), s.t);
    EXPECT_EQ(static_cast<size_t>(s.y), exact);
  }
}

TEST(DatabaseEdge, IdsStableAcrossDeleteThenInsert) {
  Matrix m = Matrix::Ones(3, 2);
  data::Database db(std::move(m), data::Metric::kEuclidean);
  db.Delete(1);
  size_t id = db.Insert({9.0f, 9.0f});
  EXPECT_EQ(id, 3u);         // appended, never reuses slots
  EXPECT_FALSE(db.alive(1)); // tombstone preserved
  EXPECT_EQ(db.size(), 3u);
}

}  // namespace
}  // namespace selnet
