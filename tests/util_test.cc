#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/backoff.h"
#include "util/crc32.h"
#include "util/env.h"
#include "util/histogram.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace selnet::util {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::Invalid("bad shape");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad shape");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Status ReturnsEarly(bool fail) {
  SEL_RETURN_NOT_OK(fail ? Status::Invalid("nope") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(ReturnsEarly(false).ok());
  EXPECT_FALSE(ReturnsEarly(true).ok());
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(2);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 3));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(RngTest, BetaInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 2000; ++i) {
    double v = rng.Beta(3.0, 2.5);
    ASSERT_GE(v, 0.0);
    ASSERT_LE(v, 1.0);
    sum += v;
  }
  // Mean of Beta(3, 2.5) = 3 / 5.5 ~ 0.545.
  EXPECT_NEAR(sum / 2000.0, 3.0 / 5.5, 0.03);
}

TEST(RngTest, SampleWithoutReplacementUnique) {
  Rng rng(4);
  auto picks = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(picks.size(), 20u);
  std::set<size_t> uniq(picks.begin(), picks.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (size_t p : picks) EXPECT_LT(p, 50u);
}

TEST(RngTest, SampleAllIsPermutation) {
  Rng rng(5);
  auto picks = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> uniq(picks.begin(), picks.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, SubmitWithResultReturnsValue) {
  ThreadPool pool(2);
  std::future<int> sum = pool.SubmitWithResult([] { return 40 + 2; });
  std::future<std::string> text =
      pool.SubmitWithResult([] { return std::string("done"); });
  EXPECT_EQ(sum.get(), 42);
  EXPECT_EQ(text.get(), "done");
}

TEST(ThreadPoolTest, SubmitWithResultPropagatesException) {
  ThreadPool pool(2);
  std::future<int> f = pool.SubmitWithResult(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, SubmitWithResultManyConcurrent) {
  ThreadPool pool(4);
  std::vector<std::future<size_t>> futures;
  for (size_t i = 0; i < 200; ++i) {
    futures.push_back(pool.SubmitWithResult([i] { return i * i; }));
  }
  for (size_t i = 0; i < 200; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(0, 1000, [&](size_t i) { hits[i].fetch_add(1); }, 16);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyAndTinyRanges) {
  std::atomic<int> count{0};
  ParallelFor(5, 5, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  ParallelFor(0, 3, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(TableTest, RendersAlignedColumns) {
  AsciiTable table({"Model", "MSE"});
  table.AddRow({"SelNet", "4.95"});
  table.AddRow({"KDE", "64.13"});
  std::string s = table.ToString();
  EXPECT_NE(s.find("Model"), std::string::npos);
  EXPECT_NE(s.find("SelNet"), std::string::npos);
  EXPECT_NE(s.find("64.13"), std::string::npos);
}

TEST(TableTest, NumFormatsDigits) {
  EXPECT_EQ(AsciiTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::Num(2.0, 0), "2");
}

TEST(EnvTest, DefaultScaleIsSane) {
  ScaleConfig cfg = GetScaleConfig();
  EXPECT_GT(cfg.n, 0u);
  EXPECT_GT(cfg.dim, 0u);
  EXPECT_GE(cfg.w, 2u);
  EXPECT_GT(cfg.epochs, 0u);
}

TEST(EnvTest, EnvIntFallsBack) {
  EXPECT_EQ(EnvInt("SELNET_THIS_VAR_DOES_NOT_EXIST", 123), 123);
}

TEST(HistogramTest, BucketIndexIsExactThenLogLinear) {
  // First 32 buckets are exact 1us buckets.
  for (uint64_t t = 0; t < 32; ++t) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(t), size_t(t));
  }
  // Octave boundaries are continuous: no gap, no overlap.
  EXPECT_EQ(LatencyHistogram::BucketIndex(31), 31u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(32), 32u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(63), 63u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(64), 64u);
  // The clamp tick lands in the last bucket.
  EXPECT_EQ(LatencyHistogram::BucketIndex(LatencyHistogram::kMaxTicks),
            LatencyHistogram::kNumBuckets - 1);
  // Monotone non-decreasing, steps of at most one, and every bucket's bounds
  // actually contain its ticks.
  size_t prev = 0;
  for (uint64_t t = 1; t < (uint64_t(1) << 14); ++t) {
    size_t idx = LatencyHistogram::BucketIndex(t);
    ASSERT_GE(idx, prev);
    ASSERT_LE(idx - prev, 1u);
    double ms = double(t) * 1e-3;
    ASSERT_GE(ms, LatencyHistogram::BucketLowMs(idx));
    ASSERT_LT(ms, LatencyHistogram::BucketHighMs(idx));
    prev = idx;
  }
}

TEST(HistogramTest, QuantileWithinRelativeErrorBound) {
  LatencyHistogram hist;
  std::vector<double> values;
  // Latencies spanning four decades: 5us .. ~300ms.
  for (int i = 0; i < 400; ++i) {
    double ms = 0.005 * std::pow(1.03, i);
    values.push_back(ms);
    hist.Record(ms);
  }
  std::sort(values.begin(), values.end());
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, values.size());
  for (double q : {0.10, 0.50, 0.90, 0.99, 1.00}) {
    size_t rank = size_t(std::ceil(q * double(values.size())));
    double truth = values[rank - 1];
    // Bucket midpoint error + half-tick rounding slack.
    double tol = truth * HistogramSnapshot::kRelativeErrorBound + 0.001;
    EXPECT_NEAR(snap.ValueAtQuantile(q), truth, tol) << "q=" << q;
  }
}

TEST(HistogramTest, MergeIsAssociativeAndPoolsCounts) {
  LatencyHistogram ha, hb, hc;
  for (int i = 0; i < 100; ++i) ha.Record(0.1 + 0.01 * i);
  for (int i = 0; i < 50; ++i) hb.Record(5.0 + 0.1 * i);
  for (int i = 0; i < 10; ++i) hc.Record(200.0 + i);
  HistogramSnapshot a = ha.Snapshot(), b = hb.Snapshot(), c = hc.Snapshot();

  HistogramSnapshot left = a;   // (a + b) + c
  left.Merge(b);
  left.Merge(c);
  HistogramSnapshot bc = b;     // a + (b + c)
  bc.Merge(c);
  HistogramSnapshot right = a;
  right.Merge(bc);

  EXPECT_EQ(left.count, 160u);
  EXPECT_EQ(left.count, right.count);
  EXPECT_EQ(left.sum_ticks, right.sum_ticks);
  EXPECT_EQ(left.buckets, right.buckets);
  EXPECT_DOUBLE_EQ(left.ValueAtQuantile(0.99), right.ValueAtQuantile(0.99));
  // The merged p99 must come from hc's range — a worst-shard max of the
  // inputs' p50s could never see it.
  EXPECT_GT(left.ValueAtQuantile(0.99), 150.0);
}

TEST(HistogramTest, ConcurrentRecordsKeepExactTotals) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  LatencyHistogram hist;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record(0.5 + 0.001 * ((t * kPerThread + i) % 977));
      }
    });
  }
  for (auto& th : threads) th.join();
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, uint64_t(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);

  hist.Reset();
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_TRUE(hist.Snapshot().empty());
}

TEST(HistogramTest, ClampsNegativeAndHugeValues) {
  LatencyHistogram hist;
  hist.Record(-3.0);       // clamps to 0 ticks
  hist.Record(1e9);        // clamps into the top bucket
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.buckets.size(), LatencyHistogram::kNumBuckets);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[LatencyHistogram::kNumBuckets - 1], 1u);
  // The top-bucket clamp bounds the reported max at ~67s.
  EXPECT_LT(snap.ValueAtQuantile(1.0), 70000.0);
}

TEST(BackoffTest, FirstDelayIsBaseThenJittersWithinEnvelope) {
  BackoffConfig cfg;
  cfg.base_ms = 5.0;
  cfg.cap_ms = 100.0;
  cfg.multiplier = 3.0;
  Backoff backoff(cfg, /*seed=*/42);
  double prev = backoff.NextDelayMs();
  EXPECT_DOUBLE_EQ(prev, cfg.base_ms);
  for (int i = 0; i < 50; ++i) {
    double envelope = std::min(cfg.cap_ms, prev * cfg.multiplier);
    double d = backoff.NextDelayMs();
    EXPECT_GE(d, cfg.base_ms);
    EXPECT_LE(d, std::max(cfg.base_ms, envelope));
    prev = d;
  }
  EXPECT_EQ(backoff.attempts(), 51u);
}

TEST(BackoffTest, SameSeedSameSchedule) {
  Backoff a(BackoffConfig(), 7), b(BackoffConfig(), 7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.NextDelayMs(), b.NextDelayMs());
  }
  a.Reset();
  EXPECT_EQ(a.attempts(), 0u);
  EXPECT_DOUBLE_EQ(a.NextDelayMs(), a.config().base_ms);
}

TEST(MetricsRegistryTest, HandlesAreStableAndSeriesKeyOnLabels) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("selnet_test_total", {{"shard", "0"}});
  Counter* b = reg.GetCounter("selnet_test_total", {{"shard", "1"}});
  EXPECT_NE(a, b);
  EXPECT_EQ(a, reg.GetCounter("selnet_test_total", {{"shard", "0"}}));
  a->Increment(3);
  b->Increment();
  EXPECT_EQ(a->Value(), 3u);
  EXPECT_EQ(reg.CounterTotal("selnet_test_total"), 4u);
  EXPECT_EQ(reg.CounterTotal("selnet_absent_total"), 0u);
  reg.GetGauge("selnet_depth")->Set(2.5);
  EXPECT_DOUBLE_EQ(reg.GetGauge("selnet_depth")->Value(), 2.5);
}

TEST(MetricsRegistryTest, ConcurrentResolveAndIncrementIsExact) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  MetricsRegistry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      // Half the threads re-resolve every iteration (registry mutex), half
      // cache the handle (the documented hot-path pattern); totals must agree
      // either way.
      Counter* cached =
          reg.GetCounter("selnet_spin_total", {{"mode", "cached"}});
      for (int i = 0; i < kPerThread; ++i) {
        if (t % 2 == 0) {
          cached->Increment();
        } else {
          reg.GetCounter("selnet_spin_total", {{"mode", "resolve"}})
              ->Increment();
        }
        reg.GetSummary("selnet_spin_ms")->Record(0.01 * (i % 97));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.CounterTotal("selnet_spin_total"),
            uint64_t(kThreads) * kPerThread);
  EXPECT_EQ(reg.GetSummary("selnet_spin_ms")->Count(),
            uint64_t(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, RenderTextPassesLintAndOrdersSeries) {
  MetricsRegistry reg;
  reg.GetCounter("selnet_b_total", {{"to", "dead"}, {"from", "suspect"}})
      ->Increment(2);
  reg.GetCounter("selnet_b_total", {{"to", "suspect"}, {"from", "healthy"}})
      ->Increment();
  reg.GetGauge("selnet_a_seconds", {{"endpoint", "h:1"}})->Set(1.5);
  reg.GetSummary("selnet_probe_ms", {{"endpoint", "h:1"}})->Record(0.42);
  std::string text = reg.RenderText();
  EXPECT_TRUE(LintExposition(text).ok()) << LintExposition(text).ToString();
  // One TYPE line per name, before its first sample.
  EXPECT_NE(text.find("# TYPE selnet_b_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE selnet_a_seconds gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE selnet_probe_ms summary"), std::string::npos);
  EXPECT_LT(text.find("# TYPE selnet_b_total"), text.find("selnet_b_total{"));
  // Summaries expose quantiles plus _sum/_count.
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(text.find("selnet_probe_ms_count{endpoint=\"h:1\"} 1"),
            std::string::npos);
}

TEST(MetricsLintTest, RejectsMalformedExposition) {
  EXPECT_FALSE(LintExposition("selnet_x_total 1\n").ok())
      << "sample without a TYPE line must fail";
  EXPECT_FALSE(
      LintExposition("# TYPE selnet_x_total counter\n"
                     "selnet_x_total 1\nselnet_x_total 2\n")
          .ok())
      << "duplicate series must fail";
  EXPECT_FALSE(LintExposition("# TYPE selnet_x_total counter\n"
                              "selnet_x_total{oops} 1\n")
                   .ok())
      << "bad label grammar must fail";
  EXPECT_FALSE(LintExposition("# TYPE selnet_x_total counter\n"
                              "selnet_x_total not-a-number\n")
                   .ok())
      << "non-numeric value must fail";
  // Empty output fails too — the CI smoke treats "no samples" as a broken
  // metrics plane, not a healthy idle one.
  EXPECT_FALSE(LintExposition("").ok());
  EXPECT_FALSE(LintExposition("# TYPE selnet_x_total counter\n").ok())
      << "TYPE with no samples must fail";
}

TEST(EventRingTest, BoundsRetentionAndKeepsMonotoneSeq) {
  EventRing ring(4);
  for (int i = 0; i < 10; ++i) {
    ring.Push("health", "ep" + std::to_string(i), "healthy", "suspect");
  }
  EXPECT_EQ(ring.TotalPushed(), 10u);
  std::vector<Event> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-to-newest, contiguous sequence numbers, newest == last pushed.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
  EXPECT_EQ(events.back().target, "ep9");
  EXPECT_EQ(events.front().target, "ep6");
  EXPECT_GT(events.back().unix_ms, 0);
}

TEST(EventRingTest, ConcurrentPushersNeverExceedCapacity) {
  EventRing ring(16);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&ring, t] {
      for (int i = 0; i < 500; ++i) {
        ring.Push("k", "t" + std::to_string(t), "", std::to_string(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ring.TotalPushed(), 2000u);
  std::vector<Event> events = ring.Snapshot();
  EXPECT_EQ(events.size(), 16u);
  std::set<uint64_t> seqs;
  for (const Event& e : events) seqs.insert(e.seq);
  EXPECT_EQ(seqs.size(), events.size()) << "sequence numbers must be unique";
}

TEST(HistogramCodecTest, RoundTripsSnapshotsExactly) {
  LatencyHistogram hist;
  for (int i = 0; i < 300; ++i) hist.Record(0.01 * std::pow(1.04, i));
  HistogramSnapshot snap = hist.Snapshot();
  auto decoded = DecodeHistogramSnapshot(EncodeHistogramSnapshot(snap));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const HistogramSnapshot& d = decoded.ValueOrDie();
  EXPECT_EQ(d.count, snap.count);
  EXPECT_EQ(d.sum_ticks, snap.sum_ticks);
  EXPECT_EQ(d.buckets, snap.buckets);
  EXPECT_DOUBLE_EQ(d.ValueAtQuantile(0.99), snap.ValueAtQuantile(0.99));

  // Empty snapshots survive the trip too (remote shard with no traffic yet).
  HistogramSnapshot empty;
  auto empty_rt = DecodeHistogramSnapshot(EncodeHistogramSnapshot(empty));
  ASSERT_TRUE(empty_rt.ok());
  EXPECT_TRUE(empty_rt.ValueOrDie().empty());
}

TEST(HistogramCodecTest, RejectsMalformedTokens) {
  EXPECT_FALSE(DecodeHistogramSnapshot("").ok());
  EXPECT_FALSE(DecodeHistogramSnapshot("abc").ok());
  EXPECT_FALSE(DecodeHistogramSnapshot("5;100;9999999:5").ok())
      << "bucket index beyond kNumBuckets must fail";
  EXPECT_FALSE(DecodeHistogramSnapshot("5;100;3:").ok());
  EXPECT_FALSE(DecodeHistogramSnapshot("5;100;3:2,").ok())
      << "trailing comma must fail";
  // Count/bucket skew is tolerated: a scrape can catch a live histogram
  // between the bucket write and the count bump (quantiles degrade
  // gracefully), so the decoder must not reject torn-but-parseable data.
  EXPECT_TRUE(DecodeHistogramSnapshot("5;100;3:2").ok());
}

TEST(Crc32Test, MatchesKnownVectorAndChunksCompose) {
  // The classic IEEE CRC-32 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  // Chunked computation must equal one-shot.
  const std::string data = "selectivity estimation over the wire";
  uint32_t whole = Crc32(data.data(), data.size());
  uint32_t part = Crc32(data.data(), 10);
  part = Crc32(data.data() + 10, data.size() - 10, part);
  EXPECT_EQ(part, whole);
  // A single flipped bit changes the checksum.
  std::string corrupt = data;
  corrupt[7] ^= 0x20;
  EXPECT_NE(Crc32(corrupt.data(), corrupt.size()), whole);
}

}  // namespace
}  // namespace selnet::util
