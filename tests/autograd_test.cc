#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "util/rng.h"

namespace selnet::ag {
namespace {

using tensor::Matrix;

constexpr double kTol = 2e-2;

Matrix RandomMatrix(size_t r, size_t c, uint64_t seed, float lo = -1.0f,
                    float hi = 1.0f) {
  util::Rng rng(seed);
  return Matrix::Uniform(r, c, &rng, lo, hi);
}

TEST(BackwardTest, SeedsRootWithOnes) {
  Var p = Param(Matrix::Full(1, 1, 3.0f));
  Var y = Square(p);  // y = 9, dy/dp = 6
  Backward(y);
  EXPECT_NEAR(p->grad(0, 0), 6.0f, 1e-4f);
}

TEST(BackwardTest, DiamondGraphAccumulates) {
  // y = a*a + a*a via two separate Mul nodes sharing the leaf.
  Var a = Param(Matrix::Full(1, 1, 2.0f));
  Var left = Mul(a, a);
  Var right = Mul(a, a);
  Var y = Add(left, right);  // y = 2a^2, dy/da = 4a = 8
  Backward(y);
  EXPECT_NEAR(a->grad(0, 0), 8.0f, 1e-4f);
}

TEST(BackwardTest, GradAccumulatesAcrossCalls) {
  Var p = Param(Matrix::Full(1, 1, 1.0f));
  Backward(Square(p));
  Backward(Square(p));
  EXPECT_NEAR(p->grad(0, 0), 4.0f, 1e-4f);  // 2 + 2
  ZeroGrad({p});
  EXPECT_FLOAT_EQ(p->grad(0, 0), 0.0f);
}

TEST(BackwardTest, ConstantsGetNoGradient) {
  Var c = Constant(Matrix::Full(1, 1, 5.0f));
  Var p = Param(Matrix::Full(1, 1, 2.0f));
  Var y = Mul(c, p);
  Backward(y);
  EXPECT_FALSE(c->requires_grad);
  EXPECT_NEAR(p->grad(0, 0), 5.0f, 1e-4f);
}

// Parameterized gradient checks over seeds for each op family.
class GradCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GradCheck, MatMulChain) {
  uint64_t s = GetParam();
  Var a = Param(RandomMatrix(3, 4, s));
  Var b = Param(RandomMatrix(4, 2, s + 1));
  auto loss = [&] { return MeanAll(Square(MatMul(a, b))); };
  EXPECT_LT(MaxGradError({a, b}, loss), kTol);
}

TEST_P(GradCheck, AddSubMulScale) {
  uint64_t s = GetParam();
  Var a = Param(RandomMatrix(2, 5, s));
  Var b = Param(RandomMatrix(2, 5, s + 1));
  auto loss = [&] {
    return MeanAll(Square(Scale(Sub(Mul(a, b), Add(a, b)), 0.7f)));
  };
  EXPECT_LT(MaxGradError({a, b}, loss), kTol);
}

TEST_P(GradCheck, RowBroadcastAndColBroadcast) {
  uint64_t s = GetParam();
  Var m = Param(RandomMatrix(4, 3, s));
  Var row = Param(RandomMatrix(1, 3, s + 1));
  Var col = Param(RandomMatrix(4, 1, s + 2));
  auto loss = [&] {
    return MeanAll(Square(MulColBroadcast(AddRowBroadcast(m, row), col)));
  };
  EXPECT_LT(MaxGradError({m, row, col}, loss), kTol);
}

TEST_P(GradCheck, Nonlinearities) {
  uint64_t s = GetParam();
  Var a = Param(RandomMatrix(3, 3, s, -2.0f, 2.0f));
  auto loss = [&] {
    Var h = Add(Sigmoid(a), Add(Tanh(a), Softplus(a)));
    return MeanAll(Square(h));
  };
  EXPECT_LT(MaxGradError({a}, loss), kTol);
}

TEST_P(GradCheck, LeakyReluAndExp) {
  uint64_t s = GetParam();
  Var a = Param(RandomMatrix(2, 4, s, -1.5f, 1.5f));
  auto loss = [&] { return MeanAll(Mul(LeakyRelu(a, 0.1f), Exp(Scale(a, 0.3f)))); };
  EXPECT_LT(MaxGradError({a}, loss), kTol);
}

TEST_P(GradCheck, LogOfPositive) {
  uint64_t s = GetParam();
  Var a = Param(RandomMatrix(2, 3, s, 0.5f, 2.0f));
  auto loss = [&] { return MeanAll(Square(Log(a))); };
  EXPECT_LT(MaxGradError({a}, loss), kTol);
}

TEST_P(GradCheck, ConcatSliceReshape) {
  uint64_t s = GetParam();
  Var a = Param(RandomMatrix(3, 2, s));
  Var b = Param(RandomMatrix(3, 4, s + 1));
  auto loss = [&] {
    Var cat = ConcatCols(a, b);            // 3x6
    Var mid = SliceCols(cat, 1, 5);        // 3x4
    Var rs = Reshape(mid, 4, 3);           // 4x3
    return MeanAll(Square(rs));
  };
  EXPECT_LT(MaxGradError({a, b}, loss), kTol);
}

TEST_P(GradCheck, RepeatRows) {
  uint64_t s = GetParam();
  Var row = Param(RandomMatrix(1, 5, s));
  Var m = Param(RandomMatrix(6, 5, s + 1));
  auto loss = [&] { return MeanAll(Square(Mul(RepeatRows(row, 6), m))); };
  EXPECT_LT(MaxGradError({row, m}, loss), kTol);
}

TEST_P(GradCheck, Reductions) {
  uint64_t s = GetParam();
  Var a = Param(RandomMatrix(3, 4, s));
  auto loss = [&] {
    return Add(MeanAll(Square(RowSums(a))), Scale(SumAll(Mul(a, a)), 0.01f));
  };
  EXPECT_LT(MaxGradError({a}, loss), kTol);
}

TEST_P(GradCheck, CumsumRows) {
  uint64_t s = GetParam();
  Var a = Param(RandomMatrix(2, 6, s));
  auto loss = [&] { return MeanAll(Square(CumsumRows(a))); };
  EXPECT_LT(MaxGradError({a}, loss), kTol);
}

TEST_P(GradCheck, SoftmaxRows) {
  uint64_t s = GetParam();
  Var a = Param(RandomMatrix(3, 5, s));
  Var w = Constant(RandomMatrix(3, 5, s + 9));
  auto loss = [&] { return MeanAll(Square(Mul(SoftmaxRows(a), w))); };
  EXPECT_LT(MaxGradError({a}, loss), kTol);
}

TEST_P(GradCheck, NormL2Rows) {
  uint64_t s = GetParam();
  Var a = Param(RandomMatrix(3, 4, s, -1.5f, 1.5f));
  Var w = Constant(RandomMatrix(3, 4, s + 9));
  auto loss = [&] { return MeanAll(Square(Mul(NormL2Rows(a), w))); };
  EXPECT_LT(MaxGradError({a}, loss), kTol);
}

TEST_P(GradCheck, GroupedLinear) {
  uint64_t s = GetParam();
  size_t groups = 4, h = 3, batch = 5;
  Var x = Param(RandomMatrix(batch, groups * h, s));
  Var w = Param(RandomMatrix(groups, h, s + 1));
  Var b = Param(RandomMatrix(1, groups, s + 2));
  auto loss = [&] { return MeanAll(Square(GroupedLinear(x, w, b))); };
  EXPECT_LT(MaxGradError({x, w, b}, loss), kTol);
}

TEST_P(GradCheck, PiecewiseLinearGatherInterior) {
  uint64_t s = GetParam();
  size_t batch = 4, knots = 6;
  // Strictly increasing taus away from the query thresholds so the finite
  // difference perturbation (1e-3) cannot cross a segment boundary.
  Matrix tau_init(batch, knots);
  for (size_t r = 0; r < batch; ++r) {
    for (size_t k = 0; k < knots; ++k) {
      tau_init(r, k) = static_cast<float>(k) * 0.5f;
    }
  }
  Var tau = Param(tau_init);
  Var p = Param(RandomMatrix(batch, knots, s, 0.0f, 2.0f));
  Matrix ts(batch, 1);
  util::Rng rng(s + 5);
  for (size_t r = 0; r < batch; ++r) {
    ts(r, 0) = static_cast<float>(rng.Uniform(0.2, 2.2));  // interior, off-knot
  }
  Var t = Constant(ts);
  auto loss = [&] { return MeanAll(Square(PiecewiseLinearGather(tau, p, t))); };
  EXPECT_LT(MaxGradError({tau, p}, loss), kTol);
}

TEST_P(GradCheck, TopKSoftmax) {
  uint64_t s = GetParam();
  // Separated logits so the finite-difference step cannot flip the top-k set.
  Matrix init(2, 6);
  util::Rng rng(s);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 6; ++c) {
      init(r, c) = static_cast<float>(c) * 0.8f +
                   static_cast<float>(rng.Uniform(0.0, 0.1));
    }
  }
  Var a = Param(init);
  Var w = Constant(RandomMatrix(2, 6, s + 9));
  auto loss = [&] { return MeanAll(Square(Mul(TopKSoftmaxRows(a, 2), w))); };
  EXPECT_LT(MaxGradError({a}, loss), kTol);
}

TEST_P(GradCheck, Losses) {
  uint64_t s = GetParam();
  Var pred = Param(RandomMatrix(5, 1, s, 0.5f, 10.0f));
  Var target = Constant(RandomMatrix(5, 1, s + 1, 0.5f, 10.0f));
  auto huber_log = [&] { return HuberLogLoss(pred, target, 1.345f, 1.0f); };
  EXPECT_LT(MaxGradError({pred}, huber_log), kTol);

  Var pred2 = Param(RandomMatrix(4, 3, s + 2));
  Var target2 = Constant(RandomMatrix(4, 3, s + 3));
  auto huber = [&] { return HuberLoss(pred2, target2, 1.0f); };
  EXPECT_LT(MaxGradError({pred2}, huber), kTol);
  auto mse = [&] { return MseLoss(pred2, target2); };
  EXPECT_LT(MaxGradError({pred2}, mse), kTol);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GradCheck, ::testing::Values(11u, 22u, 33u));

TEST(OpsTest, NormL2RowsIsSimplex) {
  Var a = Param(RandomMatrix(4, 7, 42));
  Var out = NormL2Rows(a);
  for (size_t r = 0; r < 4; ++r) {
    float sum = 0.0f;
    for (size_t c = 0; c < 7; ++c) {
      float v = out->value(r, c);
      EXPECT_GT(v, 0.0f);  // strictly positive thanks to the eps/d pad
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(OpsTest, TopKSoftmaxSparsityAndNormalization) {
  Var a = Constant(RandomMatrix(5, 8, 7));
  Var out = TopKSoftmaxRows(a, 3);
  for (size_t r = 0; r < 5; ++r) {
    size_t nonzero = 0;
    float sum = 0.0f;
    for (size_t c = 0; c < 8; ++c) {
      float v = out->value(r, c);
      if (v > 0.0f) ++nonzero;
      sum += v;
    }
    EXPECT_EQ(nonzero, 3u);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(OpsTest, PwlGatherClampsOutsideDomain) {
  Matrix tau(1, 3), p(1, 3), t(1, 1);
  tau(0, 0) = 0.0f;
  tau(0, 1) = 1.0f;
  tau(0, 2) = 2.0f;
  p(0, 0) = 5.0f;
  p(0, 1) = 7.0f;
  p(0, 2) = 11.0f;
  t(0, 0) = -1.0f;
  Var below = PiecewiseLinearGather(Constant(tau), Constant(p), Constant(t));
  EXPECT_FLOAT_EQ(below->value(0, 0), 5.0f);
  t(0, 0) = 99.0f;
  Var above = PiecewiseLinearGather(Constant(tau), Constant(p), Constant(t));
  EXPECT_FLOAT_EQ(above->value(0, 0), 11.0f);
  t(0, 0) = 1.5f;
  Var mid = PiecewiseLinearGather(Constant(tau), Constant(p), Constant(t));
  EXPECT_FLOAT_EQ(mid->value(0, 0), 9.0f);
}

TEST(OpsTest, CumsumRowsValues) {
  Matrix m(1, 4);
  for (int i = 0; i < 4; ++i) m(0, i) = static_cast<float>(i + 1);
  Var out = CumsumRows(Constant(m));
  EXPECT_FLOAT_EQ(out->value(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out->value(0, 3), 10.0f);
}

TEST(OpsTest, SoftplusIsStableForLargeInputs) {
  Matrix m(1, 2);
  m(0, 0) = 100.0f;
  m(0, 1) = -100.0f;
  Var out = Softplus(Constant(m));
  EXPECT_NEAR(out->value(0, 0), 100.0f, 1e-3f);
  EXPECT_NEAR(out->value(0, 1), 0.0f, 1e-3f);
  EXPECT_TRUE(out->value.AllFinite());
}

TEST(OpsTest, HuberLogLossValue) {
  // yhat == y gives zero loss.
  Matrix y(2, 1);
  y(0, 0) = 10.0f;
  y(1, 0) = 100.0f;
  Var loss = HuberLogLoss(Constant(y), Constant(y));
  EXPECT_NEAR(loss->value(0, 0), 0.0f, 1e-6f);
}

}  // namespace
}  // namespace selnet::ag
