/// \file figure5_updates.cc
/// \brief Figure 5: MSE and MAPE over a stream of 100 update operations
/// (each inserting or deleting 5 records) on face-cos and fasttext-cos.
///
/// Shape to reproduce: the incremental-learning policy of Section 5.4 keeps
/// both error curves roughly flat across the stream (occasional retraining
/// pulls drift back down).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/selnet_ct.h"
#include "core/updater.h"
#include "eval/metrics.h"
#include "util/table.h"

namespace {

using namespace selnet;

void RunUpdateStream(const char* setting_name) {
  util::ScaleConfig scale = util::GetScaleConfig();
  eval::DatasetSetting setting = eval::SettingByName(setting_name);
  eval::PreparedData data = eval::PrepareData(setting, scale);
  data::SyntheticSpec spec = data::SpecFor(setting.corpus, scale);

  eval::TrainContext ctx;
  ctx.db = &data.db;
  ctx.workload = &data.workload;
  ctx.epochs = scale.epochs;

  core::SelNetConfig cfg =
      core::SelNetConfig::FromScale(scale, data.db.dim(), data.workload.tmax);
  core::SelNetCt model(cfg);
  model.Fit(ctx);

  core::UpdatePolicy policy;
  // delta_U: at this scale each op touches ~0.1% of |D|, so a tight drift
  // threshold is needed for the trigger to ever fire within 100 ops (the
  // paper's stream is equally gentle relative to its 10^6-vector corpora).
  policy.mae_drift_fraction = 0.02;
  policy.patience = 3;
  policy.max_epochs = 8;
  core::UpdateManager mgr(&data.db, &data.workload, &model, ctx, policy);

  util::Rng rng(31337);
  util::AsciiTable table({"op", "MSE(test)", "MAPE(test)", "retrained"});
  size_t retrains = 0;
  const size_t kOps = 100, kRecords = 5;
  tensor::Matrix pool =
      data::DrawFromSameMixture(spec, kOps * kRecords, /*stream_seed=*/77);
  size_t pool_next = 0;
  for (size_t op = 1; op <= kOps; ++op) {
    core::UpdateOp update;
    update.is_insert = rng.Bernoulli(0.5);
    if (update.is_insert) {
      for (size_t r = 0; r < kRecords; ++r) {
        const float* v = pool.row(pool_next++);
        update.vectors.emplace_back(v, v + data.db.dim());
      }
    } else {
      std::vector<size_t> live = data.db.LiveIds();
      std::vector<size_t> picks =
          rng.SampleWithoutReplacement(live.size(), kRecords);
      for (size_t p : picks) update.ids.push_back(live[p]);
    }
    core::UpdateResult res = mgr.Apply(update);
    if (res.retrained) ++retrains;
    if (op % 10 == 0 || op == 1) {
      data::Batch b = data::MaterializeAll(data.workload.queries,
                                           data.workload.test);
      eval::Errors e = eval::ComputeErrors(model.Predict(b.x, b.t), b.y);
      table.AddRow({std::to_string(op), util::AsciiTable::Num(e.mse, 1),
                    util::AsciiTable::Num(e.mape, 3),
                    res.retrained ? "yes" : "no"});
    }
  }
  table.Print(std::string("Figure 5 | update stream, ") + setting_name);
  std::printf("retraining triggered on %zu of %zu operations\n", retrains, kOps);
}

}  // namespace

int main() {
  bench::PrintBanner("Figure 5: data update stream (100 ops x 5 records)");
  RunUpdateStream("face-cos");
  RunUpdateStream("fasttext-cos");
  return 0;
}
