/// \file figure4_control_points.cc
/// \brief Figure 4: learned control-point placement on fasttext-cos for two
/// random test queries, SelNet-ct vs SelNet-ad-ct.
///
/// Shape to reproduce: the ad-ct ablation uses the *same* tau layout for both
/// queries; full ct adapts knot positions per query, tracking where each
/// query's selectivity curve bends.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/selnet_ct.h"
#include "util/table.h"

int main() {
  using namespace selnet;
  bench::PrintBanner("Figure 4: control point placement on fasttext-cos");
  util::ScaleConfig scale = util::GetScaleConfig();
  eval::PreparedData data =
      eval::PrepareData(eval::SettingByName("fasttext-cos"), scale);
  eval::TrainContext ctx;
  ctx.db = &data.db;
  ctx.workload = &data.workload;
  ctx.epochs = scale.epochs;

  auto ct = eval::MakeModel(eval::ModelKind::kSelNetCt, data);
  auto adct = eval::MakeModel(eval::ModelKind::kSelNetAdCt, data);
  ct->Fit(ctx);
  adct->Fit(ctx);
  auto* ct_model = dynamic_cast<core::SelNetCt*>(ct.get());
  auto* adct_model = dynamic_cast<core::SelNetCt*>(adct.get());

  // Two test queries (the first two distinct query ids in the test split).
  std::vector<uint32_t> qids;
  for (const auto& s : data.workload.test) {
    if (qids.empty() || qids.back() != s.query_id) qids.push_back(s.query_id);
    if (qids.size() == 2) break;
  }

  for (size_t qi = 0; qi < qids.size(); ++qi) {
    const float* query = data.workload.queries.row(qids[qi]);
    std::vector<float> tau_ct, p_ct, tau_ad, p_ad;
    ct_model->ControlPoints(query, &tau_ct, &p_ct);
    adct_model->ControlPoints(query, &tau_ad, &p_ad);
    util::AsciiTable table({"knot", "SelNet-ct tau", "SelNet-ct p",
                            "SelNet-ad-ct tau", "SelNet-ad-ct p",
                            "exact sel at ct-tau"});
    for (size_t k = 0; k < tau_ct.size(); ++k) {
      size_t exact = data.db.ExactSelectivity(query, tau_ct[k]);
      table.AddRow({std::to_string(k), util::AsciiTable::Num(tau_ct[k], 4),
                    util::AsciiTable::Num(p_ct[k], 1),
                    util::AsciiTable::Num(tau_ad[k], 4),
                    util::AsciiTable::Num(p_ad[k], 1),
                    std::to_string(exact)});
    }
    table.Print("Figure 4 | control points, query " + std::to_string(qi + 1));
  }

  // Quantify query-dependence: max |tau_ct(q1) - tau_ct(q2)| vs the same for
  // ad-ct (which must be ~0).
  std::vector<float> t1, p1, t2, p2, a1, ap1, a2, ap2;
  ct_model->ControlPoints(data.workload.queries.row(qids[0]), &t1, &p1);
  ct_model->ControlPoints(data.workload.queries.row(qids[1]), &t2, &p2);
  adct_model->ControlPoints(data.workload.queries.row(qids[0]), &a1, &ap1);
  adct_model->ControlPoints(data.workload.queries.row(qids[1]), &a2, &ap2);
  float ct_diff = 0.0f, ad_diff = 0.0f;
  for (size_t k = 0; k < t1.size(); ++k) {
    ct_diff = std::max(ct_diff, std::abs(t1[k] - t2[k]));
    ad_diff = std::max(ad_diff, std::abs(a1[k] - a2[k]));
  }
  std::printf("\nmax knot-position difference between the two queries:\n"
              "  SelNet-ct    : %.5f  (query-dependent placement)\n"
              "  SelNet-ad-ct : %.5f  (shared placement)\n",
              ct_diff, ad_diff);
  return 0;
}
