#pragma once

#include <string>
#include <vector>

#include "eval/suite.h"

/// \file bench_common.h
/// \brief Shared driver code for the per-table/figure bench binaries.
///
/// Every binary in bench/ regenerates one table or figure of the paper at the
/// scale selected by SELNET_SCALE (see util/env.h); the printed header records
/// the active scale so outputs are self-describing.

namespace selnet::bench {

/// \brief Print the experiment banner (scale, dataset sizes).
void PrintBanner(const std::string& experiment);

/// \brief Train every Tables-1-4 model on one setting and print the table.
///
/// \param setting_name "fasttext-cos" | "fasttext-l2" | "face-cos" | "YouTube-cos"
/// \param beta_thresholds Section 7.9 Beta(3, 2.5) threshold workload
/// \return one ModelScores row per trained model
std::vector<eval::ModelScores> RunAccuracyTable(const std::string& setting_name,
                                                bool beta_thresholds = false);

}  // namespace selnet::bench
