/// \file table6_ablation.cc
/// \brief Table 6: ablation — SelNet vs SelNet-ct vs SelNet-ad-ct on all
/// four settings.
///
/// Shape to reproduce: SelNet <= SelNet-ct << SelNet-ad-ct on every error
/// metric (partitioning helps; query-dependent knots help a lot).

#include "bench/bench_common.h"
#include "util/table.h"

int main() {
  using namespace selnet;
  bench::PrintBanner("Table 6: ablation study");
  util::ScaleConfig scale = util::GetScaleConfig();

  util::AsciiTable table({"Dataset", "Model", "MSE(valid)", "MSE(test)",
                          "MAE(valid)", "MAE(test)", "MAPE(valid)",
                          "MAPE(test)"});
  const eval::ModelKind kAblations[] = {eval::ModelKind::kSelNet,
                                        eval::ModelKind::kSelNetCt,
                                        eval::ModelKind::kSelNetAdCt};
  for (const auto& setting : eval::PaperSettings()) {
    eval::PreparedData data = eval::PrepareData(setting, scale);
    for (eval::ModelKind kind : kAblations) {
      auto model = eval::MakeModel(kind, data);
      eval::ModelScores s = eval::TrainAndScore(model.get(), data);
      table.AddRow({setting.name, s.name, util::AsciiTable::Num(s.valid.mse, 1),
                    util::AsciiTable::Num(s.test.mse, 1),
                    util::AsciiTable::Num(s.valid.mae, 2),
                    util::AsciiTable::Num(s.test.mae, 2),
                    util::AsciiTable::Num(s.valid.mape, 3),
                    util::AsciiTable::Num(s.test.mape, 3)});
    }
  }
  table.Print("Table 6 | ablation study (SelNet / SelNet-ct / SelNet-ad-ct)");
  return 0;
}
