/// \file table9_partition_size.cc
/// \brief Table 9: errors and estimation time vs partition count K on
/// fasttext-l2 (K=1 is SelNet-ct).
///
/// Shape to reproduce: errors drop from K=1 to K=3 and then flatten, while
/// estimation time grows roughly linearly in K.

#include "bench/bench_common.h"
#include "util/table.h"

int main() {
  using namespace selnet;
  bench::PrintBanner("Table 9: errors vs partition size (fasttext-l2)");
  util::ScaleConfig scale = util::GetScaleConfig();
  eval::PreparedData data =
      eval::PrepareData(eval::SettingByName("fasttext-l2"), scale);

  util::AsciiTable table({"K", "MSE(test)", "MAE(test)", "MAPE(test)",
                          "Est. time (ms)"});
  for (size_t k : {size_t{1}, size_t{3}, size_t{6}, size_t{9}}) {
    std::unique_ptr<eval::Estimator> model;
    if (k == 1) {
      model = eval::MakeModel(eval::ModelKind::kSelNetCt, data);
    } else {
      eval::ModelOptions opts;
      opts.partitions = k;
      model = eval::MakeModel(eval::ModelKind::kSelNet, data, opts);
    }
    eval::ModelScores s = eval::TrainAndScore(model.get(), data);
    table.AddRow({std::to_string(k), util::AsciiTable::Num(s.test.mse, 1),
                  util::AsciiTable::Num(s.test.mae, 2),
                  util::AsciiTable::Num(s.test.mape, 3),
                  util::AsciiTable::Num(s.estimate_ms, 3)});
  }
  table.Print("Table 9 | errors & estimation time vs partitions K, fasttext-l2");
  return 0;
}
