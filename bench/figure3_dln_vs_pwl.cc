/// \file figure3_dln_vs_pwl.cc
/// \brief Figure 3: simplified DLN vs SelNet's PWL family fitting
/// y = exp(t)/10 on [0, 10] with 8 control points.
///
/// Per Section 6.2, the simplified DLN degenerates to a piece-wise linear
/// function with *equally spaced* calibrator keypoints (only values learn),
/// while SelNet's family places knots freely. Both fits below are the
/// least-squares optima of their families, so the comparison lower-bounds
/// each model's achievable error — reproducing the figure's message: the
/// adaptive family fits the fast-changing tail far better.

#include <cmath>
#include <cstdio>
#include <vector>

#include "baselines/dln.h"
#include "bench/bench_common.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace selnet;
  bench::PrintBanner("Figure 3: simplified DLN vs SelNet PWL on y=exp(t)/10");

  // 80 training pairs with t ~ U[0, 10], as in the paper.
  util::Rng rng(2021);
  std::vector<float> ts(80), ys(80);
  for (size_t i = 0; i < ts.size(); ++i) {
    ts[i] = static_cast<float>(rng.Uniform(0.0, 10.0));
    ys[i] = 0.1f * std::exp(ts[i]);
  }
  core::PiecewiseLinear dln = bl::SimplifiedDlnFit(ts, ys, 8);
  core::PiecewiseLinear ours = bl::SelNetStyleFit(ts, ys, 8);

  // Dense evaluation series (the plotted curves).
  util::AsciiTable series({"t", "ground truth", "DLN est.", "SelNet est."});
  double mse_dln = 0.0, mse_ours = 0.0;
  size_t grid = 21;
  for (size_t i = 0; i < grid; ++i) {
    float t = 10.0f * static_cast<float>(i) / static_cast<float>(grid - 1);
    float y = 0.1f * std::exp(t);
    series.AddRow({util::AsciiTable::Num(t, 1), util::AsciiTable::Num(y, 1),
                   util::AsciiTable::Num(dln(t), 1),
                   util::AsciiTable::Num(ours(t), 1)});
  }
  for (size_t i = 0; i < ts.size(); ++i) {
    double err_dln = dln(ts[i]) - ys[i];
    double err_ours = ours(ts[i]) - ys[i];
    mse_dln += err_dln * err_dln;
    mse_ours += err_ours * err_ours;
  }
  mse_dln /= static_cast<double>(ts.size());
  mse_ours /= static_cast<double>(ts.size());

  series.Print("Figure 3 | estimation curves (8 control points each)");

  util::AsciiTable knots({"Model", "knot positions (tau)"});
  auto fmt_knots = [](const core::PiecewiseLinear& f) {
    std::string s;
    for (float k : f.tau()) {
      if (!s.empty()) s += ", ";
      s += util::AsciiTable::Num(k, 2);
    }
    return s;
  };
  knots.AddRow({"Simplified DLN", fmt_knots(dln)});
  knots.AddRow({"SelNet (ours)", fmt_knots(ours)});
  knots.Print("Figure 3 | learned control point placement");

  std::printf("\ntrain MSE: simplified DLN = %.1f, SelNet family = %.1f "
              "(ratio %.1fx)\n",
              mse_dln, mse_ours, mse_dln / std::max(mse_ours, 1e-9));
  std::printf("paper's message reproduced: equally-spaced knots cannot track "
              "the exponential tail.\n");
  return 0;
}
