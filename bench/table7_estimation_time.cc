/// \file table7_estimation_time.cc
/// \brief Table 7: average per-query estimation time (milliseconds).
///
/// Shape to reproduce: DNN fastest; SelNet-ct/-ad-ct faster than SelNet
/// (the partitioned model evaluates K local models); sampling-based LSH/KDE
/// slowest (they scan/sample the data at query time).
///
/// Training quality barely affects latency, so models are trained with a
/// reduced epoch budget here.

#include "bench/bench_common.h"
#include "util/table.h"

int main() {
  using namespace selnet;
  bench::PrintBanner("Table 7: estimation time (ms)");
  util::ScaleConfig scale = util::GetScaleConfig();
  scale.epochs = std::max<size_t>(2, scale.epochs / 4);

  std::vector<eval::ModelKind> kinds = eval::PaperModels();
  kinds.push_back(eval::ModelKind::kSelNetCt);
  kinds.push_back(eval::ModelKind::kSelNetAdCt);

  std::vector<std::string> names;
  std::vector<std::vector<std::string>> cells(kinds.size());
  std::vector<std::string> header = {"Model"};
  for (const auto& setting : eval::PaperSettings()) {
    header.push_back(setting.name);
    eval::PreparedData data = eval::PrepareData(setting, scale);
    for (size_t m = 0; m < kinds.size(); ++m) {
      if (!eval::ModelSupports(kinds[m], data.db.metric())) {
        cells[m].push_back("-");
        continue;
      }
      auto model = eval::MakeModel(kinds[m], data);
      eval::TrainContext ctx;
      ctx.db = &data.db;
      ctx.workload = &data.workload;
      ctx.epochs = scale.epochs;
      model->Fit(ctx);
      double ms = eval::MeasureEstimateMs(model.get(), data, /*max_queries=*/150);
      cells[m].push_back(util::AsciiTable::Num(ms, 3));
    }
  }
  util::AsciiTable table(header);
  for (size_t m = 0; m < kinds.size(); ++m) {
    std::vector<std::string> row = {eval::ModelKindName(kinds[m])};
    for (auto& c : cells[m]) row.push_back(c);
    table.AddRow(row);
  }
  table.Print("Table 7 | average estimation time (ms/query)");
  return 0;
}
