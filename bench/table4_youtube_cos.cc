/// \file table4_youtube_cos.cc
/// \brief Table 4: accuracy of all models on YouTube-cos.

#include "bench/bench_common.h"

int main() {
  selnet::bench::PrintBanner("Table 4: accuracy on YouTube-cos");
  auto rows = selnet::bench::RunAccuracyTable("YouTube-cos");
  selnet::eval::PrintAccuracyTable("Table 4 | YouTube-cos", rows);
  return 0;
}
