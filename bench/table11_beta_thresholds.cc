/// \file table11_beta_thresholds.cc
/// \brief Table 11: accuracy on fasttext-cos with thresholds drawn from
/// Beta(3, 2.5) instead of the geometric-selectivity ladder (Section 7.9).
///
/// Shape to reproduce: every model degrades relative to Tables 1 (wider
/// selectivity range), SelNet remains best by a clear margin.

#include "bench/bench_common.h"

int main() {
  selnet::bench::PrintBanner(
      "Table 11: fasttext-cos, Beta(3, 2.5) thresholds");
  auto rows =
      selnet::bench::RunAccuracyTable("fasttext-cos", /*beta_thresholds=*/true);
  selnet::eval::PrintAccuracyTable("Table 11 | fasttext-cos + Beta(3,2.5)", rows);
  return 0;
}
