/// \file table8_control_points.cc
/// \brief Table 8: errors vs number of control points L on fasttext-l2.
///
/// The paper sweeps L in {10, 50, 90, 130} with 50 the sweet spot: too few
/// knots underfit the curve, too many make learning harder. The sweep here is
/// proportional to the scaled default L (see util/env.h).

#include "bench/bench_common.h"
#include "util/table.h"

int main() {
  using namespace selnet;
  bench::PrintBanner("Table 8: errors vs number of control points (fasttext-l2)");
  util::ScaleConfig scale = util::GetScaleConfig();
  eval::PreparedData data =
      eval::PrepareData(eval::SettingByName("fasttext-l2"), scale);

  size_t base = scale.control_points;  // plays the role of the paper's L=50
  std::vector<size_t> sweep = {std::max<size_t>(2, base / 4), base,
                               base + base / 2 + base / 4, base * 5 / 2};

  util::AsciiTable table({"L", "MSE(valid)", "MAE(valid)", "MAPE(valid)",
                          "MSE(test)", "MAE(test)", "MAPE(test)"});
  for (size_t l : sweep) {
    eval::ModelOptions opts;
    opts.control_points = l;
    auto model = eval::MakeModel(eval::ModelKind::kSelNet, data, opts);
    eval::ModelScores s = eval::TrainAndScore(model.get(), data);
    table.AddRow({std::to_string(l), util::AsciiTable::Num(s.valid.mse, 1),
                  util::AsciiTable::Num(s.valid.mae, 2),
                  util::AsciiTable::Num(s.valid.mape, 3),
                  util::AsciiTable::Num(s.test.mse, 1),
                  util::AsciiTable::Num(s.test.mae, 2),
                  util::AsciiTable::Num(s.test.mape, 3)});
  }
  table.Print("Table 8 | errors vs control points L, fasttext-l2");
  std::printf("(paper sweep {10,50,90,130} maps to {%zu,%zu,%zu,%zu} at this scale)\n",
              sweep[0], sweep[1], sweep[2], sweep[3]);
  return 0;
}
