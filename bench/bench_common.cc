#include "bench/bench_common.h"

#include <cstdio>

namespace selnet::bench {

void PrintBanner(const std::string& experiment) {
  util::ScaleConfig scale = util::GetScaleConfig();
  std::printf(
      "==============================================================\n"
      "SelNet reproduction | %s\n"
      "scale=%s  n=%zu  dim=%zu  queries=%zu  w=%zu  epochs=%zu\n"
      "(paper-scale data is simulated; compare relative ordering and\n"
      " ratios, not absolute magnitudes — see EXPERIMENTS.md)\n"
      "==============================================================\n",
      experiment.c_str(), scale.name().c_str(), scale.n, scale.dim,
      scale.num_queries, scale.w, scale.epochs);
  std::fflush(stdout);
}

std::vector<eval::ModelScores> RunAccuracyTable(const std::string& setting_name,
                                                bool beta_thresholds) {
  util::ScaleConfig scale = util::GetScaleConfig();
  eval::PreparedData data =
      eval::PrepareData(eval::SettingByName(setting_name), scale, beta_thresholds);
  std::vector<eval::ModelScores> rows;
  for (eval::ModelKind kind : eval::PaperModels()) {
    if (!eval::ModelSupports(kind, data.db.metric())) continue;
    auto model = eval::MakeModel(kind, data);
    rows.push_back(eval::TrainAndScore(model.get(), data));
  }
  return rows;
}

}  // namespace selnet::bench
