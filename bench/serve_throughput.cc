/// \file serve_throughput.cc
/// \brief Serving throughput: batched scheduler vs one-request-at-a-time,
/// plus the sweep workload (SweepCapable fast path vs fallbacks).
///
/// Part 1 — scalar stream, three configurations:
///   unbatched — blocking single-row Predict per request (the baseline a
///               naive integration would ship);
///   batched   — the BatchScheduler coalescing concurrent requests into
///               wide Predict calls;
///   batched+cache — same, with the sharded LRU in front, on a skewed
///               (hot-spot) request mix.
///
/// Part 2 — threshold sweeps, K=16 thresholds per query:
///   scalar x16   — 16 independent Estimate calls (16 single-row Predicts);
///   row expansion — one Sweep request with the fast path disabled (one
///               16-row batched Predict);
///   fast path    — one Sweep request through SweepCapable: ONE control-point
///               evaluation + 16 piecewise-linear lookups.
///
/// Part 3 — pack-cache workload: repeated batched Predict on a fixed model,
///   warm (version-keyed packs + fold cached) vs cold (repack per call /
///   publish boundary per batch), plus per-dispatched-kernel rows/s.
///
/// Part 4 — live-update pipeline: the same batched scalar stream measured
///   idle vs while the pipeline continuously retrains + republishes in the
///   background (drift threshold 0, a feeder keeps drift-tripping ops
///   queued). The serve path must stay responsive through retrains.
///
/// Part 5 — sharded scale-out: the same model published under 8 routes,
///   served by a 1-shard vs an N-shard ShardedRegistry (one pool thread per
///   shard). Aggregate QPS must scale with shards when cores exist.
///
/// Part 6 — network frontend, three drivers against one sharded router:
///   in-process batched (the ceiling), blocking JSON-over-TCP round-trips
///   (the compat/debug mode — the old 17x cliff), and pipelined binary
///   frames over ClientChannel (hello-negotiated, a window of tagged
///   requests in flight per connection, batch-decoded into SubmitMany).
///   Gated: pipelined binary must land within 2x of in-process.
///
/// Part 7 — tracing overhead: the batched scalar stream with stage tracing
///   off vs sampling 1 request in 64. Sampled tracing must be cheap enough
///   to leave on in production.
///
/// Part 8 — fleet telemetry overhead: a 1-local + 1-remote fleet
///   (replication 2, 8 routes) driven twice — telemetry off vs the full
///   observability plane on (1-in-16 wire-traced requests, a 25 ms
///   remote-stats scrape tick, and a sidecar polling the merged snapshot +
///   text exposition like an external scraper). Same interleaved best-of-2
///   discipline as part 7.
///
/// Acceptance shapes: batched QPS >= 1.7x unbatched QPS (was 2x before the
/// kernel-engine PR; the UNBATCHED baseline then gained ~40% from the cached
/// fold constants and pack-aware kernels, compressing the ratio while both
/// absolute numbers improved), the fast path >= 3x faster per sweep than 16
/// independent scalar estimates, warm-pack batched Predict >= 1.3x rows/s vs
/// the cold-pack baseline, retrain-concurrent p99 <= 2x idle p99, N-shard
/// aggregate QPS >= 1.5x single-shard (gated only on >= 2 cores — shard
/// pools cannot parallelize a single core), pipelined binary wire QPS >= 0.5x
/// in-process batched QPS with zero wire errors (ratio gated on >= 2 cores,
/// like the other concurrency gates; the error check always applies),
/// 1-in-64 sampled tracing costs
/// <= 3% QPS vs tracing off, and the full fleet telemetry plane (traced +
/// scraped) costs <= 3% QPS vs telemetry off (gated on >= 2 cores — the
/// plane's scrape/scraper threads need spare cores to not timeslice the
/// data path).
///
/// `--json PATH` additionally writes every gate and headline metric as one
/// machine-readable JSON object — the CI bench-gate job archives it as the
/// perf trajectory (BENCH_serve.json is the committed baseline).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/model_io.h"
#include "core/selnet_ct.h"
#include "data/synthetic.h"
#include "data/workload.h"
#include "serve/client_channel.h"
#include "serve/frontend.h"
#include "serve/server.h"
#include "serve/shard_node.h"
#include "serve/shard_router.h"
#include "serve/trace.h"
#include "serve/update_pipeline.h"
#include "serve/wire.h"
#include "tensor/kernel_dispatch.h"
#include "tensor/pack_cache.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace selnet;

namespace {

struct RunResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double hit_rate = 0.0;
  double avg_batch = 0.0;
};

/// Drive `total_requests` through the server from `num_clients` threads.
/// Each client keeps `pipeline` requests in flight — a selectivity service
/// embedded in a query optimizer scores many candidate predicates at once.
/// `zipf_hot` > 0 sends that fraction of requests to one hot query subset.
RunResult DriveLoad(serve::SelNetServer* server, const data::Workload& wl,
                    size_t total_requests, size_t num_clients, size_t pipeline,
                    double zipf_hot) {
  server->stats().Reset();
  server->cache().Clear();
  std::atomic<size_t> remaining{total_requests};
  util::Stopwatch watch;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng(7 + c);
      std::vector<std::future<float>> in_flight;
      in_flight.reserve(pipeline);
      for (;;) {
        size_t batch = 0;
        while (batch < pipeline) {
          size_t prev = remaining.fetch_sub(1);
          if (prev == 0 || prev > total_requests) {  // Underflow guard.
            remaining.store(0);
            break;
          }
          size_t qi;
          if (zipf_hot > 0 && rng.Uniform() < zipf_hot) {
            qi = size_t(rng.UniformInt(0, 7));  // Hot subset: 8 queries.
          } else {
            qi = size_t(rng.UniformInt(0, int64_t(wl.queries.rows()) - 1));
          }
          // Thresholds on a coarse grid so the hot set actually repeats.
          float t = wl.tmax * float(rng.UniformInt(1, 16)) / 16.0f;
          in_flight.push_back(server->EstimateAsync(wl.queries.row(qi), t));
          ++batch;
        }
        for (auto& f : in_flight) f.get();
        in_flight.clear();
        if (batch < pipeline) return;
      }
    });
  }
  for (auto& th : clients) th.join();
  server->Drain();
  double seconds = watch.ElapsedSeconds();

  serve::StatsSnapshot s = server->stats().Snapshot();
  RunResult r;
  r.qps = double(total_requests) / seconds;
  r.p50_ms = s.latency_p50_ms;
  r.p99_ms = s.latency_p99_ms;
  r.hit_rate = s.cache_hit_rate;
  r.avg_batch = s.avg_batch_size;
  return r;
}

/// Drive `total_requests` scalar requests through a ShardedRegistry from
/// `num_clients` threads, round-robining across `routes`. Returns aggregate
/// QPS (the scale-out comparison only needs throughput).
double DriveShardLoad(serve::ShardedRegistry* reg, const data::Workload& wl,
                      const std::vector<std::string>& routes,
                      size_t total_requests, size_t num_clients,
                      size_t pipeline, size_t trace_every = 0) {
  std::atomic<size_t> remaining{total_requests};
  util::Stopwatch watch;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng(11 + c);
      std::vector<std::future<serve::EstimateResponse>> in_flight;
      in_flight.reserve(pipeline);
      size_t rr = c;  // Stagger route round-robin across clients.
      size_t sent = 0;
      for (;;) {
        size_t batch = 0;
        while (batch < pipeline) {
          size_t prev = remaining.fetch_sub(1);
          if (prev == 0 || prev > total_requests) {  // Underflow guard.
            remaining.store(0);
            break;
          }
          size_t qi = size_t(rng.UniformInt(0, int64_t(wl.queries.rows()) - 1));
          float t = wl.tmax * float(rng.UniformInt(1, 16)) / 16.0f;
          serve::EstimateRequest req = serve::EstimateRequest::Point(
              wl.queries.row(qi), wl.queries.cols(), t,
              routes[rr++ % routes.size()]);
          // 1-in-N wire tracing: a remote primary then times its own stages
          // and the stage block rides back with the response.
          if (trace_every != 0 && ++sent % trace_every == 0) {
            req.trace = std::make_shared<serve::RequestTrace>();
          }
          in_flight.push_back(reg->Submit(std::move(req)));
          ++batch;
        }
        for (auto& f : in_flight) f.get();
        in_flight.clear();
        if (batch < pipeline) return;
      }
    });
  }
  for (auto& th : clients) th.join();
  reg->Drain();
  return double(total_requests) / watch.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  bench::PrintBanner("Serving throughput: batched vs unbatched");

  data::SyntheticSpec spec;
  spec.n = 4000;
  spec.dim = 16;
  spec.num_clusters = 8;
  data::Database db(data::GenerateMixture(spec), data::Metric::kEuclidean);
  data::WorkloadSpec wspec;
  wspec.num_queries = 160;
  wspec.w = 8;
  wspec.max_sel_fraction = 0.1;
  data::Workload wl = data::GenerateWorkload(db, wspec);

  core::SelNetConfig cfg;
  cfg.input_dim = db.dim();
  cfg.tmax = wl.tmax;
  cfg.num_control = 12;
  eval::TrainContext ctx;
  ctx.db = &db;
  ctx.workload = &wl;
  ctx.epochs = 4;  // Latency does not depend on training quality.
  auto model = std::make_shared<core::SelNetCt>(cfg);
  model->Fit(ctx);

  const size_t kRequests = 20000;
  const size_t kClients = 8;
  const size_t kPipeline = 64;

  auto make_server = [&](bool batching, bool cache) {
    serve::ServerConfig scfg;
    scfg.dim = db.dim();
    scfg.enable_batching = batching;
    scfg.enable_cache = cache;
    scfg.scheduler.max_batch = 128;
    scfg.scheduler.max_delay_ms = 0.3;
    auto server = std::make_unique<serve::SelNetServer>(scfg);
    server->Publish(model);
    return server;
  };

  // One-request-at-a-time baseline: a single client, pipeline depth 1, no
  // batching, no cache — every request is one full single-row Predict.
  auto unbatched = make_server(false, false);
  RunResult base = DriveLoad(unbatched.get(), wl, kRequests / 4, 1, 1, 0.0);

  auto batched = make_server(true, false);
  RunResult bat = DriveLoad(batched.get(), wl, kRequests, kClients, kPipeline,
                            0.0);

  auto cached = make_server(true, true);
  RunResult cac = DriveLoad(cached.get(), wl, kRequests, kClients, kPipeline,
                            0.8);

  util::AsciiTable table({"config", "QPS", "p50 ms", "p99 ms", "hit rate",
                          "avg batch"});
  auto add = [&](const char* name, const RunResult& r) {
    table.AddRow({name, util::AsciiTable::Num(r.qps, 0),
                  util::AsciiTable::Num(r.p50_ms, 3),
                  util::AsciiTable::Num(r.p99_ms, 3),
                  util::AsciiTable::Num(r.hit_rate, 3),
                  util::AsciiTable::Num(r.avg_batch, 1)});
  };
  add("unbatched (1 client)", base);
  add("batched (8 clients)", bat);
  add("batched+cache (hot mix)", cac);
  table.Print("serve_throughput");

  double speedup = base.qps > 0 ? bat.qps / base.qps : 0.0;
  std::printf(
      "\nbatched vs unbatched speedup: %.2fx (acceptance: >= 1.7x) %s\n",
      speedup, speedup >= 1.7 ? "OK" : "BELOW TARGET");

  // ------------------------------------------------------ sweep workload ---
  // Batching and caching are off so every mode measures pure compute on the
  // caller thread: the comparison is 16 single-row Predicts vs one 16-row
  // Predict vs one control-point evaluation + 16 PWL lookups.
  bench::PrintBanner("Sweep workload: K=16 thresholds per query");
  const size_t kThresholds = 16;
  const size_t kSweeps = 300;

  auto make_sweep_server = [&](bool fastpath) {
    serve::ServerConfig scfg;
    scfg.dim = db.dim();
    scfg.enable_batching = false;
    scfg.enable_cache = false;
    scfg.enable_sweep_fastpath = fastpath;
    auto server = std::make_unique<serve::SelNetServer>(scfg);
    server->Publish(model);
    return server;
  };

  std::vector<float> ts(kThresholds);
  for (size_t i = 0; i < kThresholds; ++i) {
    ts[i] = wl.tmax * float(i + 1) / float(kThresholds);
  }
  auto query_for = [&](size_t s) {
    return wl.queries.row(s % wl.queries.rows());
  };

  auto scalar_server = make_sweep_server(false);
  util::Stopwatch scalar_watch;
  for (size_t s = 0; s < kSweeps; ++s) {
    for (size_t i = 0; i < kThresholds; ++i) {
      scalar_server->Estimate(query_for(s), ts[i]).ValueOrDie();
    }
  }
  double scalar_us = scalar_watch.ElapsedMillis() * 1000.0 / double(kSweeps);

  auto fallback_server = make_sweep_server(false);
  util::Stopwatch fallback_watch;
  for (size_t s = 0; s < kSweeps; ++s) {
    fallback_server->Submit(serve::EstimateRequest::Sweep(query_for(s),
                                                          db.dim(), ts))
        .get();
  }
  double fallback_us =
      fallback_watch.ElapsedMillis() * 1000.0 / double(kSweeps);

  auto fast_server = make_sweep_server(true);
  util::Stopwatch fast_watch;
  for (size_t s = 0; s < kSweeps; ++s) {
    fast_server->Submit(serve::EstimateRequest::Sweep(query_for(s), db.dim(),
                                                      ts))
        .get();
  }
  double fast_us = fast_watch.ElapsedMillis() * 1000.0 / double(kSweeps);

  util::AsciiTable sweep_table({"mode", "us / sweep", "vs scalar x16"});
  auto add_sweep = [&](const char* name, double us) {
    sweep_table.AddRow({name, util::AsciiTable::Num(us, 1),
                        util::AsciiTable::Num(scalar_us / us, 2)});
  };
  add_sweep("scalar x16 (16 Predicts)", scalar_us);
  add_sweep("row expansion (1 batched Predict)", fallback_us);
  add_sweep("fast path (1 control-point eval)", fast_us);
  sweep_table.Print("sweep_workload");

  double sweep_speedup = fast_us > 0 ? scalar_us / fast_us : 0.0;
  std::printf(
      "\nfast path vs 16 scalar estimates: %.2fx (acceptance: >= 3x) %s\n",
      sweep_speedup, sweep_speedup >= 3.0 ? "OK" : "BELOW TARGET");

  // -------------------------------------------------- pack-cache workload ---
  // Repeated batched Predict on a fixed model, three engine states:
  //   warm          — steady-state serving: version-keyed packs + fold reused;
  //   cold pack     — pack cache disabled, every GemmNN repacks B's panels
  //                   per call (the pre-cache engine); isolates the pack
  //                   cache's own share;
  //   cold caches   — every batch starts at the publish boundary: one
  //                   InvalidateInferenceCache (pack and fold generations are
  //                   unified) before each Predict. This is the cold-pack
  //                   BASELINE the acceptance ratio gates: what every batch
  //                   would pay if packs/folds were not keyed to a weight
  //                   version.
  // Batch = 16 rows (kGemmPackMinRows): the smallest batch the packed path
  // serves, i.e. the scheduler-flush shape where per-call packing hurts most.
  bench::PrintBanner("Pack cache: repeated batched Predict, cold vs warm");
  const size_t kPackBatch = 16;
  const size_t kPackIters = 600;
  tensor::Matrix px(kPackBatch, db.dim());
  tensor::Matrix pt(kPackBatch, 1);
  for (size_t r = 0; r < kPackBatch; ++r) {
    const float* q = wl.queries.row(r % wl.queries.rows());
    std::copy(q, q + db.dim(), px.row(r));
    pt(r, 0) = wl.tmax * float(r + 1) / float(kPackBatch + 1);
  }
  auto time_predicts = [&](bool invalidate_per_batch) {
    model->InvalidateInferenceCache();
    model->Predict(px, pt);  // Warm-up: folds (and packs, if enabled) build.
    util::Stopwatch watch;
    for (size_t i = 0; i < kPackIters; ++i) {
      if (invalidate_per_batch) model->InvalidateInferenceCache();
      model->Predict(px, pt);
    }
    return double(kPackIters * kPackBatch) / watch.ElapsedSeconds();
  };

  double warm_rows = time_predicts(false);
  tensor::SetPackCacheEnabled(false);
  double repack_rows = time_predicts(false);
  tensor::SetPackCacheEnabled(true);
  double cold_rows = time_predicts(true);

  util::AsciiTable pack_table({"config", "kernel", "rows/s"});
  std::string default_kernel = tensor::ActiveKernel().name;
  pack_table.AddRow({"warm (version-keyed caches)", default_kernel,
                     util::AsciiTable::Num(warm_rows, 0)});
  pack_table.AddRow({"cold pack (repack per call)", default_kernel,
                     util::AsciiTable::Num(repack_rows, 0)});
  pack_table.AddRow({"cold caches (publish boundary per batch)",
                     default_kernel, util::AsciiTable::Num(cold_rows, 0)});
  // Per-kernel warm rows/s: how much each dispatched ISA variant buys on
  // this host. Reported, not gated — CI hardware varies.
  for (const auto& kern : tensor::AvailableKernels()) {
    if (default_kernel == kern.name) continue;
    tensor::SetActiveKernel(kern.name);
    pack_table.AddRow({"warm (version-keyed caches)", kern.name,
                       util::AsciiTable::Num(time_predicts(false), 0)});
  }
  tensor::SetActiveKernel(default_kernel);
  pack_table.Print("pack_cache");

  double pack_only = repack_rows > 0 ? warm_rows / repack_rows : 0.0;
  double pack_speedup = cold_rows > 0 ? warm_rows / cold_rows : 0.0;
  std::printf("\nwarm vs repack-per-call (pack cache alone): %.2fx\n",
              pack_only);
  std::printf(
      "warm-pack vs cold-pack batched Predict (B=%zu): %.2fx "
      "(acceptance: >= 1.3x) %s\n",
      kPackBatch, pack_speedup, pack_speedup >= 1.3 ? "OK" : "BELOW TARGET");
  tensor::PackStatsSnapshot pack_stats = tensor::PackStats();
  std::printf("pack cache: %llu hits, %llu builds, %llu invalidations\n",
              (unsigned long long)pack_stats.hits,
              (unsigned long long)pack_stats.builds,
              (unsigned long long)pack_stats.invalidations);

  // --------------------------------------------- live-update pipeline ---
  // Same batched scalar stream, measured twice on one server: idle, then
  // while the update pipeline continuously patches labels, retrains the
  // shadow model and republishes. The pipeline thread runs at background
  // nice, so serve-path tail latency should survive even on few cores.
  bench::PrintBanner("Live updates: serve QPS/p99, idle vs during retrain");
  auto live_server = make_server(/*batching=*/true, /*cache=*/false);
  RunResult idle = DriveLoad(live_server.get(), wl, kRequests, kClients,
                             kPipeline, 0.0);

  serve::UpdatePipelineConfig ucfg;
  ucfg.policy.mae_drift_fraction = 0.0;  // Every upward drift retrains.
  ucfg.policy.max_epochs = 4;
  ucfg.policy.patience = 2;
  serve::LiveUpdatePipeline& pipeline =
      live_server->AttachUpdatePipeline(ucfg, db, wl);

  // Pick validation-split queries: duplicating them inflates validation
  // labels, so every op drifts MAE upward and trips a retrain.
  std::vector<uint32_t> valid_qids;
  for (const auto& s : wl.valid) valid_qids.push_back(s.query_id);

  std::atomic<bool> feeding{true};
  std::thread feeder([&] {
    size_t round = 0;
    while (feeding.load()) {
      core::UpdateOp op;
      op.is_insert = true;
      const float* hot = wl.queries.row(valid_qids[round % valid_qids.size()]);
      for (int i = 0; i < 30; ++i) op.vectors.emplace_back(hot, hot + db.dim());
      pipeline.Submit(std::move(op));
      ++round;
      // Keep a small standing queue instead of unbounded backlog.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });
  // Let the first retrain actually start before measuring.
  while (pipeline.Snapshot().retrains_triggered == 0 &&
         pipeline.Snapshot().ops_applied < 50) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  RunResult busy = DriveLoad(live_server.get(), wl, kRequests, kClients,
                             kPipeline, 0.0);
  feeding.store(false);
  feeder.join();
  serve::UpdatePipelineState pstate = pipeline.Snapshot();
  live_server->DetachUpdatePipeline();

  util::AsciiTable live_table({"config", "QPS", "p50 ms", "p99 ms"});
  auto add_live = [&](const char* name, const RunResult& r) {
    live_table.AddRow({name, util::AsciiTable::Num(r.qps, 0),
                       util::AsciiTable::Num(r.p50_ms, 3),
                       util::AsciiTable::Num(r.p99_ms, 3)});
  };
  add_live("idle (no pipeline work)", idle);
  add_live("during background retrain", busy);
  live_table.Print("live_updates");
  std::printf(
      "pipeline activity (cumulative): %llu ops applied, %llu retrains "
      "(%llu epochs), %llu republishes\n",
      (unsigned long long)pstate.ops_applied,
      (unsigned long long)pstate.retrains_triggered,
      (unsigned long long)pstate.epochs_run,
      (unsigned long long)pstate.publishes);

  double p99_ratio = idle.p99_ms > 0 ? busy.p99_ms / idle.p99_ms : 0.0;
  bool live_ok = p99_ratio <= 2.0 && pstate.retrains_triggered >= 1;
  std::printf(
      "retrain-concurrent p99 vs idle p99: %.2fx (acceptance: <= 2x, >= 1 "
      "retrain) %s\n",
      p99_ratio, live_ok ? "OK" : "BELOW TARGET");

  // ------------------------------------------------- sharded scale-out ---
  // The same trained model under 8 routes: a 1-shard registry (every route
  // behind one pool thread) vs an N-shard registry (one pool thread per
  // shard). Each client spreads its requests round-robin across routes, so
  // the N-shard fleet can run shards in parallel when cores exist.
  bench::PrintBanner("Sharded scale-out: 1 shard vs N shards, 8 routes");
  const size_t cores =
      std::max<size_t>(1, std::thread::hardware_concurrency());
  const size_t kShards = std::min<size_t>(4, std::max<size_t>(2, cores));
  std::vector<std::string> routes;
  for (int r = 0; r < 8; ++r) routes.push_back("route" + std::to_string(r));

  auto run_sharded = [&](size_t num_shards) {
    serve::ShardedConfig scfg;
    scfg.server.dim = db.dim();
    scfg.server.enable_cache = false;
    scfg.server.scheduler.max_batch = 128;
    scfg.server.scheduler.max_delay_ms = 0.3;
    scfg.num_shards = num_shards;
    scfg.threads_per_shard = 1;
    serve::ShardedRegistry reg(scfg);
    for (const auto& route : routes) reg.Publish(route, model);
    // Warm-up pass, then the measured run.
    DriveShardLoad(&reg, wl, routes, kRequests / 10, kClients, kPipeline);
    return DriveShardLoad(&reg, wl, routes, kRequests, kClients, kPipeline);
  };

  double one_shard_qps = run_sharded(1);
  double n_shard_qps = run_sharded(kShards);

  util::AsciiTable shard_table({"config", "QPS"});
  shard_table.AddRow({"1 shard (8 routes)",
                      util::AsciiTable::Num(one_shard_qps, 0)});
  shard_table.AddRow({std::to_string(kShards) + " shards (8 routes)",
                      util::AsciiTable::Num(n_shard_qps, 0)});
  shard_table.Print("sharded_scaleout");

  double shard_speedup = one_shard_qps > 0 ? n_shard_qps / one_shard_qps : 0.0;
  // One core cannot run two shard pools in parallel, so the gate only
  // engages on multi-core hosts; single-core boxes still print the ratio.
  const bool shard_gate_active = cores >= 2;
  bool shard_ok = !shard_gate_active || shard_speedup >= 1.5;
  std::printf(
      "\n%zu-shard vs 1-shard aggregate QPS: %.2fx (acceptance: >= 1.5x on "
      ">= 2 cores; %zu core(s) -> gate %s) %s\n",
      kShards, shard_speedup, cores, shard_gate_active ? "active" : "skipped",
      shard_ok ? "OK" : "BELOW TARGET");

  // ---------------------------------------------------- network frontend ---
  // Three drivers against the SAME sharded backend:
  //   in-process     — DriveShardLoad straight into the router (the ceiling);
  //   JSON blocking  — one NetClient round trip at a time (the old 17x-off
  //                    cliff: per-float decimal codec + unamortized loopback
  //                    latency), reported for the trajectory, not gated;
  //   binary pipelined — ClientChannel after the hello upgrade, a window of
  //                    tagged frames in flight per connection, decoded in
  //                    read-round batches into SubmitMany.
  // The gate is wire_vs_inproc: pipelined binary within 2x of in-process.
  bench::PrintBanner("Network frontend: in-process vs JSON vs binary wire");
  double inproc_qps = 0.0;
  double wire_qps = 0.0;
  double wire_us = 0.0;
  uint64_t wire_requests = 0;
  double wire_binary_qps = 0.0;
  uint64_t wire_binary_errors = 0;
  double wire_vs_inproc = 0.0;
  bool wire_gate_active = false;
  bool wire_ok = true;
  {
    serve::ShardedConfig scfg;
    scfg.server.dim = db.dim();
    scfg.server.enable_cache = false;
    scfg.server.scheduler.max_batch = 128;
    scfg.server.scheduler.max_delay_ms = 0.3;
    scfg.num_shards = kShards;
    scfg.threads_per_shard = 1;
    serve::ShardedRegistry reg(scfg);
    for (const auto& route : routes) reg.Publish(route, model);
    serve::FrontendConfig fcfg;
    fcfg.num_loops = cores >= 4 ? 2 : 1;  // Spare cores -> split the loops.
    serve::NetFrontend frontend(fcfg, &reg);
    if (!frontend.status().ok()) {
      std::printf("frontend unavailable: %s\n",
                  frontend.status().ToString().c_str());
    } else {
      const size_t kWireClients = 4;
      const size_t kWirePerClient = 1500;
      const size_t kWireTotal = kWireClients * kWirePerClient;
      const size_t kWindow = 64;  // Pipelined frames in flight per client.

      // In-process ceiling: same total, same client count, pipelined the
      // same depth the channel uses.
      DriveShardLoad(&reg, wl, routes, kWireTotal / 4, kWireClients, kWindow);
      inproc_qps =
          DriveShardLoad(&reg, wl, routes, kWireTotal, kWireClients, kWindow);

      // JSON blocking round trips (the compat mode a debug client speaks).
      std::atomic<size_t> completed{0};
      util::Stopwatch wire_watch;
      std::vector<std::thread> wire_clients;
      for (size_t c = 0; c < kWireClients; ++c) {
        wire_clients.emplace_back([&, c] {
          serve::NetClient client;
          if (!client.Connect("127.0.0.1", frontend.port()).ok()) return;
          util::Rng rng(23 + c);
          for (size_t i = 0; i < kWirePerClient; ++i) {
            size_t qi =
                size_t(rng.UniformInt(0, int64_t(wl.queries.rows()) - 1));
            float t = wl.tmax * float(rng.UniformInt(1, 16)) / 16.0f;
            auto resp = client.Roundtrip(serve::EstimateRequest::Point(
                wl.queries.row(qi), db.dim(), t,
                routes[(c + i) % routes.size()]));
            if (resp.ok()) completed.fetch_add(1);
          }
        });
      }
      for (auto& th : wire_clients) th.join();
      double seconds = wire_watch.ElapsedSeconds();
      wire_requests = completed.load();
      wire_qps = seconds > 0 ? double(wire_requests) / seconds : 0.0;
      wire_us = wire_requests > 0
                    ? seconds * 1e6 / double(wire_requests) * kWireClients
                    : 0.0;

      // Pipelined binary frames over ClientChannel: each client keeps
      // kWindow tagged requests in flight on one negotiated connection,
      // shipping them in CallMany bursts (one contiguous write per burst —
      // the optimizer-scoring shape: many candidate predicates at once).
      const size_t kBurst = 16;
      auto drive_binary = [&](size_t total) {
        std::atomic<size_t> remaining{total};
        std::atomic<size_t> done{0};
        std::atomic<size_t> errors{0};
        util::Stopwatch watch;
        std::vector<std::thread> threads;
        for (size_t c = 0; c < kWireClients; ++c) {
          threads.emplace_back([&, c] {
            serve::ClientChannelConfig ccfg;
            ccfg.address = "127.0.0.1";
            ccfg.port = frontend.port();
            ccfg.recv_timeout_ms = 60000;
            serve::ClientChannel channel(ccfg);
            if (!channel.Connect().ok()) {
              errors.fetch_add(1);
              return;
            }
            std::mutex mu;
            std::condition_variable cv;
            size_t inflight = 0;
            util::Rng rng(41 + c);
            size_t rr = c;
            for (;;) {
              size_t burst = 0;
              for (;;) {
                size_t prev = remaining.fetch_sub(1);
                if (prev == 0 || prev > total) {  // Underflow guard.
                  remaining.store(0);
                  break;
                }
                if (++burst == kBurst) break;
              }
              if (burst == 0) break;
              std::vector<serve::SelNetServer::Submission> batch;
              batch.reserve(burst);
              for (size_t b = 0; b < burst; ++b) {
                size_t qi =
                    size_t(rng.UniformInt(0, int64_t(wl.queries.rows()) - 1));
                float t = wl.tmax * float(rng.UniformInt(1, 16)) / 16.0f;
                serve::SelNetServer::Submission sub;
                sub.req = serve::EstimateRequest::Point(
                    wl.queries.row(qi), db.dim(), t,
                    routes[rr++ % routes.size()]);
                sub.done = [&](serve::EstimateResponse&&,
                               std::exception_ptr failed) {
                  if (failed) {
                    errors.fetch_add(1);
                  } else {
                    done.fetch_add(1);
                  }
                  {
                    std::lock_guard<std::mutex> lock(mu);
                    --inflight;
                  }
                  cv.notify_one();
                };
                batch.push_back(std::move(sub));
              }
              {
                std::unique_lock<std::mutex> lock(mu);
                cv.wait(lock, [&] { return inflight + burst <= kWindow; });
                inflight += burst;
              }
              channel.CallMany(std::move(batch));
            }
            {
              std::unique_lock<std::mutex> lock(mu);
              cv.wait(lock, [&] { return inflight == 0; });
            }
            channel.Close();
          });
        }
        for (auto& th : threads) th.join();
        struct {
          double qps;
          size_t errors;
        } r{watch.ElapsedSeconds() > 0
                ? double(done.load()) / watch.ElapsedSeconds()
                : 0.0,
            errors.load()};
        return r;
      };
      drive_binary(kWireTotal / 4);  // Warmup (connections, packs, caches).
      auto binary = drive_binary(kWireTotal);
      wire_binary_qps = binary.qps;
      wire_binary_errors = binary.errors;

      serve::FrontendStats fstats = frontend.Stats();
      util::AsciiTable wire_table({"config", "QPS"});
      wire_table.AddRow({"in-process batched (ceiling)",
                         util::AsciiTable::Num(inproc_qps, 0)});
      wire_table.AddRow({"wire JSON, blocking",
                         util::AsciiTable::Num(wire_qps, 0)});
      wire_table.AddRow({"wire binary, pipelined x" + std::to_string(kWindow),
                         util::AsciiTable::Num(wire_binary_qps, 0)});
      wire_table.Print("net_frontend");
      std::printf("blocking JSON: %llu round-trips, %.1f us each per client; "
                  "frontend: %llu responses, %llu request errors, %llu "
                  "binary-path errors\n",
                  (unsigned long long)wire_requests, wire_us,
                  (unsigned long long)fstats.responses,
                  (unsigned long long)fstats.request_errors,
                  (unsigned long long)wire_binary_errors);

      // The frontend's poll loop and the channel reader threads are built to
      // ride spare cores; on one core the ratio measures timeslicing against
      // the in-process drivers, not wire cost — same policy as the N-shard
      // and fleet gates. Errors stay gated everywhere.
      wire_gate_active = cores >= 2;
      wire_vs_inproc = inproc_qps > 0 ? wire_binary_qps / inproc_qps : 0.0;
      wire_ok = (!wire_gate_active || wire_vs_inproc >= 0.5) &&
                wire_binary_errors == 0;
      std::printf(
          "\npipelined binary wire vs in-process QPS: %.3fx (acceptance: >= "
          "0.5x on >= 2 cores, zero errors; %zu core(s) -> ratio gate %s) "
          "%s\n",
          wire_vs_inproc, cores, wire_gate_active ? "active" : "skipped",
          wire_ok ? "OK" : "BELOW TARGET");
    }
  }

  // ------------------------------------------------ tracing overhead gate ---
  // The same batched scalar stream, once with stage tracing off and once
  // sampling 1 request in 64 (the deployment default order of magnitude).
  // Sampling must be cheap enough to leave on in production: <= 3% QPS.
  // Both servers are built and warmed up front, then measurement reps
  // INTERLEAVE (off, on, off, on) with best-of-2 per config. Running one
  // config to completion before the other starts lets cache warmup and
  // clock-speed drift land entirely on the second config — an earlier
  // version of this gate recorded the traced server 1.2x FASTER than
  // untraced purely from that ordering bias.
  bench::PrintBanner("Tracing overhead: sampled 1-in-64 vs tracing off");
  auto make_traced_server = [&](size_t sample_every) {
    serve::ServerConfig scfg;
    scfg.dim = db.dim();
    scfg.enable_batching = true;
    scfg.enable_cache = false;
    scfg.scheduler.max_batch = 128;
    scfg.scheduler.max_delay_ms = 0.3;
    scfg.trace_sample_every = sample_every;
    auto server = std::make_unique<serve::SelNetServer>(scfg);
    server->Publish(model);
    return server;
  };
  auto untraced_server = make_traced_server(0);
  auto traced_server = make_traced_server(64);
  // One unmeasured warmup pass each, so first-touch costs bias neither side.
  DriveLoad(untraced_server.get(), wl, kRequests / 4, kClients, kPipeline,
            0.0);
  DriveLoad(traced_server.get(), wl, kRequests / 4, kClients, kPipeline, 0.0);
  double untraced_qps = 0.0;
  double traced_qps = 0.0;
  for (int rep = 0; rep < 2; ++rep) {
    RunResult off =
        DriveLoad(untraced_server.get(), wl, kRequests, kClients, kPipeline,
                  0.0);
    RunResult on =
        DriveLoad(traced_server.get(), wl, kRequests, kClients, kPipeline,
                  0.0);
    untraced_qps = std::max(untraced_qps, off.qps);
    traced_qps = std::max(traced_qps, on.qps);
  }

  util::AsciiTable trace_table({"config", "QPS (best of 2)"});
  trace_table.AddRow({"tracing off", util::AsciiTable::Num(untraced_qps, 0)});
  trace_table.AddRow({"traced 1-in-64",
                      util::AsciiTable::Num(traced_qps, 0)});
  trace_table.Print("tracing_overhead");

  double trace_ratio = untraced_qps > 0 ? traced_qps / untraced_qps : 0.0;
  bool trace_ok = trace_ratio >= 0.97;
  std::printf(
      "\ntraced vs untraced QPS: %.3fx (acceptance: >= 0.97x, i.e. <= 3%% "
      "overhead) %s\n",
      trace_ratio, trace_ok ? "OK" : "BELOW TARGET");

  // ------------------------------------------- fleet telemetry overhead ---
  // What the PR-9 observability plane costs when ALL of it is on at once:
  // a 1-local + 1-remote fleet (replication 2) serving the same 8 routes,
  // once with telemetry off and once with 1-in-16 requests wire-traced, a
  // 25 ms remote-stats scrape tick, and a sidecar thread polling the merged
  // snapshot + text exposition like an external Prometheus scraper. Both
  // fleets are built and warmed up front; measurement reps interleave
  // (off, on, off, on) with best-of-2 per config, per the part-7 fix.
  bench::PrintBanner("Fleet telemetry: traced + scraped vs telemetry off");
  double fleet_plain_qps = 0.0;
  double fleet_telemetry_qps = 0.0;
  double fleet_telemetry_ratio = 0.0;
  bool fleet_gate_active = false;
  bool fleet_telemetry_ok = true;
  {
    auto fleet_bytes = core::SaveModelBytes(*model);
    auto make_node = [&] {
      serve::ShardNodeConfig ncfg;
      ncfg.server.dim = db.dim();
      ncfg.server.enable_cache = false;
      ncfg.server.scheduler.max_batch = 128;
      ncfg.server.scheduler.max_delay_ms = 0.3;
      ncfg.threads = 1;
      return std::make_unique<serve::ShardNode>(ncfg);
    };
    auto make_fleet = [&](uint16_t port, bool telemetry) {
      serve::ShardedConfig scfg;
      scfg.server.dim = db.dim();
      scfg.server.enable_cache = false;
      scfg.server.scheduler.max_batch = 128;
      scfg.server.scheduler.max_delay_ms = 0.3;
      scfg.num_shards = 1;
      scfg.threads_per_shard = 1;
      scfg.replication = 2;
      serve::RemoteShardConfig remote;
      remote.port = port;
      remote.recv_timeout_ms = 5000;
      scfg.remotes.push_back(remote);
      scfg.health_interval_ms = 20.0;
      scfg.scrape_interval_ms = telemetry ? 25.0 : 0.0;
      if (telemetry) scfg.node_id = "bench-coordinator";
      return std::make_unique<serve::ShardedRegistry>(scfg);
    };
    auto wait_healthy = [&](serve::ShardedRegistry* reg) {
      auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (std::chrono::steady_clock::now() < deadline &&
             reg->slot_health(1) != serve::ShardHealth::kHealthy) {
        reg->NudgeHealth();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      return reg->slot_health(1) == serve::ShardHealth::kHealthy;
    };
    auto node_plain = make_node();
    auto node_telemetry = make_node();
    bool fleet_up = fleet_bytes.ok() && node_plain->status().ok() &&
                    node_telemetry->status().ok();
    const std::string model_bytes =
        fleet_bytes.ok() ? fleet_bytes.MoveValueUnsafe() : std::string();
    std::unique_ptr<serve::ShardedRegistry> plain_reg;
    std::unique_ptr<serve::ShardedRegistry> telemetry_reg;
    if (fleet_up) {
      plain_reg = make_fleet(node_plain->port(), /*telemetry=*/false);
      telemetry_reg = make_fleet(node_telemetry->port(), /*telemetry=*/true);
      fleet_up = wait_healthy(plain_reg.get()) &&
                 wait_healthy(telemetry_reg.get());
      for (const auto& route : routes) {
        fleet_up =
            fleet_up &&
            plain_reg->PublishFromBytes(route, model_bytes, "bench").ok() &&
            telemetry_reg->PublishFromBytes(route, model_bytes, "bench").ok();
      }
    }
    if (!fleet_up) {
      // Environment failure (port bind, serialization), not a perf result:
      // report and leave the gate inactive rather than failing the bench.
      std::printf("fleet telemetry bench unavailable on this host\n");
    } else {
      const size_t kFleetRequests = kRequests / 2;
      // Sidecar scraper: the merged fleet snapshot + full text exposition,
      // polled every 25 ms — but only while a telemetry run is measured, so
      // the plain runs don't share the bill.
      std::atomic<bool> sidecar_stop{false};
      std::atomic<bool> sidecar_active{false};
      std::thread sidecar([&] {
        while (!sidecar_stop.load()) {
          if (sidecar_active.load()) {
            (void)telemetry_reg->AggregateSnapshot();
            (void)telemetry_reg->MetricsText();
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(25));
        }
      });
      DriveShardLoad(plain_reg.get(), wl, routes, kFleetRequests / 4,
                     kClients, kPipeline);
      sidecar_active.store(true);
      DriveShardLoad(telemetry_reg.get(), wl, routes, kFleetRequests / 4,
                     kClients, kPipeline, /*trace_every=*/16);
      sidecar_active.store(false);
      for (int rep = 0; rep < 2; ++rep) {
        double off = DriveShardLoad(plain_reg.get(), wl, routes,
                                    kFleetRequests, kClients, kPipeline);
        sidecar_active.store(true);
        double on = DriveShardLoad(telemetry_reg.get(), wl, routes,
                                   kFleetRequests, kClients, kPipeline,
                                   /*trace_every=*/16);
        sidecar_active.store(false);
        fleet_plain_qps = std::max(fleet_plain_qps, off);
        fleet_telemetry_qps = std::max(fleet_telemetry_qps, on);
      }
      sidecar_stop.store(true);
      sidecar.join();

      // The ratio only means something if the plane actually ran: the merged
      // view must carry the remote node's scraped identity.
      serve::StatsSnapshot agg = telemetry_reg->AggregateSnapshot();
      std::string remote_node = "(not scraped)";
      for (const auto& sl : agg.slots) {
        if (sl.kind == "remote" && !sl.node_id.empty()) remote_node = sl.node_id;
      }
      util::AsciiTable fleet_table({"config", "QPS (best of 2)"});
      fleet_table.AddRow({"telemetry off",
                          util::AsciiTable::Num(fleet_plain_qps, 0)});
      fleet_table.AddRow({"traced 1-in-16 + scraped",
                          util::AsciiTable::Num(fleet_telemetry_qps, 0)});
      fleet_table.Print("fleet_telemetry");
      std::printf("merged snapshot: %llu requests across %zu slots, remote "
                  "node \"%s\"\n",
                  (unsigned long long)agg.requests, agg.slots.size(),
                  remote_node.c_str());

      // The plane's threads (scrape tick, sidecar scraper, RemoteShard
      // readers) are designed to ride spare cores; on one core the ratio
      // measures timeslicing, not telemetry cost — same policy as the
      // N-shard gate.
      fleet_gate_active = cores >= 2;
      fleet_telemetry_ratio =
          fleet_plain_qps > 0 ? fleet_telemetry_qps / fleet_plain_qps : 0.0;
      fleet_telemetry_ok = !fleet_gate_active || fleet_telemetry_ratio >= 0.97;
      std::printf(
          "\ntraced+scraped vs telemetry-off QPS: %.3fx (acceptance: >= "
          "0.97x on >= 2 cores; %zu core(s) -> gate %s) %s\n",
          fleet_telemetry_ratio, cores,
          fleet_gate_active ? "active" : "skipped",
          fleet_telemetry_ok ? "OK" : "BELOW TARGET");
    }
  }

  bool all_ok = speedup >= 1.7 && sweep_speedup >= 3.0 &&
                pack_speedup >= 1.3 && live_ok && shard_ok && wire_ok &&
                trace_ok && fleet_telemetry_ok;

  // ------------------------------------------------ machine-readable out ---
  if (!json_path.empty()) {
    serve::JsonWriter gates;
    gates.RawField("batched_vs_unbatched",
                   serve::JsonWriter()
                       .Field("value", speedup)
                       .Field("threshold", 1.7)
                       .Field("op", ">=")
                       .Field("pass", speedup >= 1.7)
                       .Finish());
    gates.RawField("sweep_fastpath_vs_scalar",
                   serve::JsonWriter()
                       .Field("value", sweep_speedup)
                       .Field("threshold", 3.0)
                       .Field("op", ">=")
                       .Field("pass", sweep_speedup >= 3.0)
                       .Finish());
    gates.RawField("warm_vs_cold_pack",
                   serve::JsonWriter()
                       .Field("value", pack_speedup)
                       .Field("threshold", 1.3)
                       .Field("op", ">=")
                       .Field("pass", pack_speedup >= 1.3)
                       .Finish());
    gates.RawField("retrain_p99_vs_idle",
                   serve::JsonWriter()
                       .Field("value", p99_ratio)
                       .Field("threshold", 2.0)
                       .Field("op", "<=")
                       .Field("pass", live_ok)
                       .Finish());
    gates.RawField("nshard_vs_1shard_qps",
                   serve::JsonWriter()
                       .Field("value", shard_speedup)
                       .Field("threshold", 1.5)
                       .Field("op", ">=")
                       .Field("active", shard_gate_active)
                       .Field("pass", shard_ok)
                       .Finish());
    gates.RawField("wire_vs_inproc",
                   serve::JsonWriter()
                       .Field("value", wire_vs_inproc)
                       .Field("threshold", 0.5)
                       .Field("op", ">=")
                       .Field("active", wire_gate_active)
                       .Field("pass", wire_ok)
                       .Finish());
    gates.RawField("tracing_overhead",
                   serve::JsonWriter()
                       .Field("value", trace_ratio)
                       .Field("threshold", 0.97)
                       .Field("op", ">=")
                       .Field("pass", trace_ok)
                       .Finish());
    gates.RawField("fleet_telemetry_overhead",
                   serve::JsonWriter()
                       .Field("value", fleet_telemetry_ratio)
                       .Field("threshold", 0.97)
                       .Field("op", ">=")
                       .Field("active", fleet_gate_active)
                       .Field("pass", fleet_telemetry_ok)
                       .Finish());

    serve::JsonWriter metrics;
    metrics.Field("unbatched_qps", base.qps);
    metrics.Field("batched_qps", bat.qps);
    metrics.Field("cached_qps", cac.qps);
    metrics.Field("cached_hit_rate", cac.hit_rate);
    metrics.Field("sweep_scalar_us", scalar_us);
    metrics.Field("sweep_row_expansion_us", fallback_us);
    metrics.Field("sweep_fastpath_us", fast_us);
    metrics.Field("pack_warm_rows_s", warm_rows);
    metrics.Field("pack_repack_rows_s", repack_rows);
    metrics.Field("pack_cold_rows_s", cold_rows);
    metrics.Field("idle_qps", idle.qps);
    metrics.Field("idle_p99_ms", idle.p99_ms);
    metrics.Field("retrain_qps", busy.qps);
    metrics.Field("retrain_p99_ms", busy.p99_ms);
    metrics.Field("one_shard_qps", one_shard_qps);
    metrics.Field("n_shard_qps", n_shard_qps);
    metrics.Field("wire_inproc_qps", inproc_qps);
    metrics.Field("wire_json_qps", wire_qps);
    metrics.Field("wire_json_roundtrips", wire_requests);
    metrics.Field("wire_binary_qps", wire_binary_qps);
    metrics.Field("wire_binary_errors", wire_binary_errors);
    metrics.Field("untraced_qps", untraced_qps);
    metrics.Field("traced_qps", traced_qps);
    metrics.Field("fleet_plain_qps", fleet_plain_qps);
    metrics.Field("fleet_telemetry_qps", fleet_telemetry_qps);

    serve::JsonWriter doc;
    doc.Field("bench", "serve_throughput");
    doc.Field("cores", uint64_t(cores));
    doc.Field("shards", uint64_t(kShards));
    doc.Field("gemm_kernel", tensor::ActiveKernel().name);
    doc.RawField("gates", gates.Finish());
    doc.RawField("metrics", metrics.Finish());
    doc.Field("pass", all_ok);
    std::ofstream out(json_path);
    out << doc.Finish() << "\n";
    std::printf("\nwrote bench gate JSON to %s\n", json_path.c_str());
  }

  return all_ok ? 0 : 1;
}
