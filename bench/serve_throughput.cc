/// \file serve_throughput.cc
/// \brief Serving throughput: batched scheduler vs one-request-at-a-time.
///
/// Three configurations over the same request stream:
///   unbatched — blocking single-row Predict per request (the baseline a
///               naive integration would ship);
///   batched   — the BatchScheduler coalescing concurrent requests into
///               wide Predict calls;
///   batched+cache — same, with the sharded LRU in front, on a skewed
///               (hot-spot) request mix.
///
/// Acceptance shape: batched QPS >= 2x unbatched QPS. Single-row prediction
/// pays the full autograd graph construction per call; a 64-row batch pays
/// it once, so the speedup is mostly amortized fixed cost plus wider GEMMs.

#include <atomic>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/selnet_ct.h"
#include "data/synthetic.h"
#include "data/workload.h"
#include "serve/server.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace selnet;

namespace {

struct RunResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double hit_rate = 0.0;
  double avg_batch = 0.0;
};

/// Drive `total_requests` through the server from `num_clients` threads.
/// Each client keeps `pipeline` requests in flight — a selectivity service
/// embedded in a query optimizer scores many candidate predicates at once.
/// `zipf_hot` > 0 sends that fraction of requests to one hot query subset.
RunResult DriveLoad(serve::SelNetServer* server, const data::Workload& wl,
                    size_t total_requests, size_t num_clients, size_t pipeline,
                    double zipf_hot) {
  server->stats().Reset();
  server->cache().Clear();
  std::atomic<size_t> remaining{total_requests};
  util::Stopwatch watch;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng(7 + c);
      std::vector<std::future<float>> in_flight;
      in_flight.reserve(pipeline);
      for (;;) {
        size_t batch = 0;
        while (batch < pipeline) {
          size_t prev = remaining.fetch_sub(1);
          if (prev == 0 || prev > total_requests) {  // Underflow guard.
            remaining.store(0);
            break;
          }
          size_t qi;
          if (zipf_hot > 0 && rng.Uniform() < zipf_hot) {
            qi = size_t(rng.UniformInt(0, 7));  // Hot subset: 8 queries.
          } else {
            qi = size_t(rng.UniformInt(0, int64_t(wl.queries.rows()) - 1));
          }
          // Thresholds on a coarse grid so the hot set actually repeats.
          float t = wl.tmax * float(rng.UniformInt(1, 16)) / 16.0f;
          in_flight.push_back(server->EstimateAsync(wl.queries.row(qi), t));
          ++batch;
        }
        for (auto& f : in_flight) f.get();
        in_flight.clear();
        if (batch < pipeline) return;
      }
    });
  }
  for (auto& th : clients) th.join();
  server->Drain();
  double seconds = watch.ElapsedSeconds();

  serve::StatsSnapshot s = server->stats().Snapshot();
  RunResult r;
  r.qps = double(total_requests) / seconds;
  r.p50_ms = s.latency_p50_ms;
  r.p99_ms = s.latency_p99_ms;
  r.hit_rate = s.cache_hit_rate;
  r.avg_batch = s.avg_batch_size;
  return r;
}

}  // namespace

int main() {
  bench::PrintBanner("Serving throughput: batched vs unbatched");

  data::SyntheticSpec spec;
  spec.n = 4000;
  spec.dim = 16;
  spec.num_clusters = 8;
  data::Database db(data::GenerateMixture(spec), data::Metric::kEuclidean);
  data::WorkloadSpec wspec;
  wspec.num_queries = 160;
  wspec.w = 8;
  wspec.max_sel_fraction = 0.1;
  data::Workload wl = data::GenerateWorkload(db, wspec);

  core::SelNetConfig cfg;
  cfg.input_dim = db.dim();
  cfg.tmax = wl.tmax;
  cfg.num_control = 12;
  eval::TrainContext ctx;
  ctx.db = &db;
  ctx.workload = &wl;
  ctx.epochs = 4;  // Latency does not depend on training quality.
  auto model = std::make_shared<core::SelNetCt>(cfg);
  model->Fit(ctx);

  const size_t kRequests = 20000;
  const size_t kClients = 8;
  const size_t kPipeline = 64;

  auto make_server = [&](bool batching, bool cache) {
    serve::ServerConfig scfg;
    scfg.dim = db.dim();
    scfg.enable_batching = batching;
    scfg.enable_cache = cache;
    scfg.scheduler.max_batch = 128;
    scfg.scheduler.max_delay_ms = 0.3;
    auto server = std::make_unique<serve::SelNetServer>(scfg);
    server->Publish(model);
    return server;
  };

  // One-request-at-a-time baseline: a single client, pipeline depth 1, no
  // batching, no cache — every request is one full single-row Predict.
  auto unbatched = make_server(false, false);
  RunResult base = DriveLoad(unbatched.get(), wl, kRequests / 4, 1, 1, 0.0);

  auto batched = make_server(true, false);
  RunResult bat = DriveLoad(batched.get(), wl, kRequests, kClients, kPipeline,
                            0.0);

  auto cached = make_server(true, true);
  RunResult cac = DriveLoad(cached.get(), wl, kRequests, kClients, kPipeline,
                            0.8);

  util::AsciiTable table({"config", "QPS", "p50 ms", "p99 ms", "hit rate",
                          "avg batch"});
  auto add = [&](const char* name, const RunResult& r) {
    table.AddRow({name, util::AsciiTable::Num(r.qps, 0),
                  util::AsciiTable::Num(r.p50_ms, 3),
                  util::AsciiTable::Num(r.p99_ms, 3),
                  util::AsciiTable::Num(r.hit_rate, 3),
                  util::AsciiTable::Num(r.avg_batch, 1)});
  };
  add("unbatched (1 client)", base);
  add("batched (8 clients)", bat);
  add("batched+cache (hot mix)", cac);
  table.Print("serve_throughput");

  double speedup = base.qps > 0 ? bat.qps / base.qps : 0.0;
  std::printf("\nbatched vs unbatched speedup: %.2fx (acceptance: >= 2x) %s\n",
              speedup, speedup >= 2.0 ? "OK" : "BELOW TARGET");
  return speedup >= 2.0 ? 0 : 1;
}
