/// \file scenarios.cc
/// \brief Adversarial serving scenarios: the overload harness.
///
/// serve_throughput.cc measures the serving stack on cooperative CLOSED-LOOP
/// load — clients wait for answers, so offered load can never exceed
/// capacity and the overload machinery never engages. This harness drives
/// the opposite regime: OPEN-LOOP arrivals (requests land on a clock, not on
/// completions), deliberately pushed past measured capacity, plus the other
/// ways production traffic misbehaves. Each scenario is a declarative
/// ScenarioSpec row; each emits the same `--json` gate format the CI
/// bench-gate job already consumes (BENCH_scenarios.json is the committed
/// baseline).
///
/// Scenarios:
///   burst — Poisson arrivals with a square-wave burst at 2x measured
///           capacity against an admission-controlled server. Gates: typed
///           admission rejections with p99 <= 2 ms, accepted-request p99
///           <= 3x the steady-state p99, zero deadline-expired rows reach
///           Predict, and every failure is a TYPED rejection.
///   skew  — Zipf-skewed route traffic against the sharded consistent-hash
///           ring at 1.5x capacity: the hot shard sheds, every arrival
///           resolves exactly once, nothing is silently dropped. The
///           accepted-latency gate needs shard pools that can actually run
///           in parallel, so it deactivates (with a printed reason) on a
///           1-core box.
///   drift — a drift storm keeps the LiveUpdatePipeline permanently
///           retraining (drift threshold 0 + a feeder thread) while
///           open-loop overload runs: retrains must happen AND overload
///           failures must stay typed with no expired row predicted.
///   churn — frontend connect/disconnect churn: clients that connect, send,
///           and vanish mid-response, while one well-behaved wire client
///           must keep getting answers; the frontend must survive to answer
///           a clean round-trip at the end.
///   fault — fleet fault injection against R=2 replication over real
///           `shard_node` child processes (the harness re-execs itself with
///           a hidden flag to become one): SIGSTOP gray shard (alive TCP,
///           no answers — only the recv-timeout failover path catches it),
///           kill -9 of the primary replica mid-traffic, crash-then-rejoin
///           with a state re-sync that must serve bit-identical answers,
///           and a connection blackhole (bound listener that never answers).
///           Gates: ZERO failed client queries through every fault, and the
///           reborn process answers bit-identically to the pre-crash fleet.
///           Not in the default scenario list — it forks child processes
///           and owns its own CI job (BENCH_fault.json is its committed
///           baseline).
///   metrics — fleet telemetry smoke: boots a 1-local + 1-remote fleet (a
///           real `shard_node` child), drives traced traffic through both
///           replicas, forces a remote-stats scrape, then fetches
///           `{"cmd":"metrics"}` and `{"cmd":"events"}` over the wire from
///           the coordinator AND the node and lints the expositions
///           (`util::LintExposition` — empty or malformed output is a
///           failed gate). Not in the default list — it forks a child
///           process and owns its own CI job.
///
/// Flags: --json PATH (gate output), --smoke (short CI durations),
/// --scenario NAME (repeatable; default = burst+skew+drift+churn).

#ifdef __linux__
#include <sys/resource.h>
#include <sys/syscall.h>
#endif
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/selnet_ct.h"
#include "data/synthetic.h"
#include "data/workload.h"
#include "serve/admission.h"
#include "serve/frontend.h"
#include "serve/server.h"
#include "serve/shard_node.h"
#include "serve/shard_router.h"
#include "serve/trace.h"
#include "serve/update_pipeline.h"
#include "serve/wire.h"
#include "util/backoff.h"
#include "util/metrics.h"
#include "util/net.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace selnet;

namespace {

using Clock = std::chrono::steady_clock;
using SubmitFn = std::function<void(serve::EstimateRequest,
                                    serve::SelNetServer::ResponseFn)>;

// ------------------------------------------------------------------ gates ---

struct Gate {
  std::string name;
  double value = 0.0;
  double threshold = 0.0;
  std::string op;  // ">=" or "<="
  bool active = true;
  std::string skip_reason;

  bool Pass() const {
    if (!active) return true;
    return op == ">=" ? value >= threshold : value <= threshold;
  }
};

struct Report {
  std::vector<Gate> gates;
  std::vector<std::pair<std::string, double>> metrics;

  void AddGate(std::string name, double value, const char* op,
               double threshold, bool active = true,
               std::string skip_reason = "") {
    gates.push_back(Gate{std::move(name), value, threshold, op, active,
                         std::move(skip_reason)});
  }
  void AddMetric(std::string name, double value) {
    metrics.emplace_back(std::move(name), value);
  }
};

void PrintGates(const Report& report) {
  for (const auto& g : report.gates) {
    if (!g.active) {
      std::printf("  gate %-38s SKIPPED (%s)\n", g.name.c_str(),
                  g.skip_reason.c_str());
      continue;
    }
    std::printf("  gate %-38s %10.4f (%s %.4f) %s\n", g.name.c_str(), g.value,
                g.op.c_str(), g.threshold,
                g.Pass() ? "OK" : "BELOW TARGET");
  }
}

// ------------------------------------------------------------ percentiles ---

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t idx = size_t(std::ceil(p * double(v.size())));
  if (idx > 0) --idx;
  if (idx >= v.size()) idx = v.size() - 1;
  return v[idx];
}

// ------------------------------------------------------- open-loop driver ---

/// One open-loop run's outcome: every arrival resolves into exactly one
/// bucket (success, degraded success, typed shed by reason, untyped error)
/// or is counted unresolved if its completion never came back.
struct LoadResult {
  uint64_t offered = 0;
  uint64_t ok = 0;
  uint64_t degraded = 0;
  uint64_t untyped = 0;
  uint64_t typed[serve::kNumShedReasons] = {};
  std::vector<double> accepted_ms;
  std::vector<double> admission_shed_ms;  // queue_full + priority_shed only.
  double achieved_qps = 0.0;
  uint64_t unresolved = 0;

  uint64_t TypedTotal() const {
    uint64_t n = 0;
    for (uint64_t c : typed) n += c;
    return n;
  }
  uint64_t Resolved() const {
    return ok + degraded + untyped + TypedTotal();
  }
};

/// Drive arrivals for `seconds` at `rate_at(t)` requests/s on a 1 ms tick
/// (arrival count per tick is Poisson with mean rate * actual-tick-length,
/// so a driver that falls behind self-corrects instead of silently offering
/// less). Arrivals NEVER wait for completions — that is the point. The
/// driver runs on its own thread at nice +10: a load generator that crowds
/// the serving pool off the core would measure its own scheduling pressure,
/// not the server's overload behavior (this matters on 1-core CI boxes;
/// with spare cores the nice level is irrelevant).
LoadResult DriveOpenLoop(
    const SubmitFn& submit, const data::Workload& wl, double seconds,
    const std::function<double(double)>& rate_at, double deadline_ms,
    const std::function<std::string(util::Rng&)>& route_of, uint64_t seed) {
  struct Shared {
    std::mutex mu;
    LoadResult r;
    std::atomic<uint64_t> outstanding{0};
  };
  auto shared = std::make_shared<Shared>();
  // Latency vectors grow mid-run at hundreds of kQPS; reallocation pauses
  // there would bleed into the very tail being measured.
  shared->r.accepted_ms.reserve(1 << 20);
  shared->r.admission_shed_ms.reserve(1 << 20);
  const int64_t max_qi = int64_t(wl.queries.rows()) - 1;
  const size_t dim = wl.queries.cols();

  uint64_t offered = 0;
  std::thread driver([&] {
#ifdef __linux__
    setpriority(PRIO_PROCESS, pid_t(syscall(SYS_gettid)), 10);
#endif
    util::Rng rng(seed);
    const auto start = Clock::now();
    auto prev = start;
    auto next_tick = start;
    for (;;) {
      const auto now = Clock::now();
      const double t = std::chrono::duration<double>(now - start).count();
      if (t >= seconds) break;
      const double dt =
          std::max(1e-4, std::chrono::duration<double>(now - prev).count());
      prev = now;
      std::poisson_distribution<int> arrivals(rate_at(t) * dt);
      int n = arrivals(rng.engine());
      for (int i = 0; i < n; ++i) {
        size_t qi = size_t(rng.UniformInt(0, max_qi));
        float thr = wl.tmax * float(rng.UniformInt(1, 16)) / 16.0f;
        serve::EstimateRequest req = serve::EstimateRequest::Point(
            wl.queries.row(qi), dim, thr, route_of ? route_of(rng) : "");
        if (deadline_ms > 0) {
          req.deadline =
              Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double, std::milli>(
                                     deadline_ms));
        }
        const auto t0 = Clock::now();
        ++offered;
        shared->outstanding.fetch_add(1, std::memory_order_relaxed);
        submit(std::move(req), [shared, t0](serve::EstimateResponse&& resp,
                                            std::exception_ptr error) {
          const double ms = std::chrono::duration<double, std::milli>(
                                Clock::now() - t0)
                                .count();
          {
            std::lock_guard<std::mutex> lock(shared->mu);
            LoadResult& r = shared->r;
            if (!error) {
              if (resp.degraded) {
                ++r.degraded;
              } else {
                ++r.ok;
              }
              r.accepted_ms.push_back(ms);
            } else {
              serve::ShedReason reason = serve::ShedReasonFrom(error);
              if (reason == serve::ShedReason::kNone) {
                ++r.untyped;
              } else {
                ++r.typed[size_t(reason)];
                if (reason == serve::ShedReason::kQueueFull ||
                    reason == serve::ShedReason::kPriorityShed) {
                  r.admission_shed_ms.push_back(ms);
                }
              }
            }
          }
          shared->outstanding.fetch_sub(1, std::memory_order_relaxed);
        });
      }
      next_tick += std::chrono::milliseconds(1);
      std::this_thread::sleep_until(next_tick);
    }
  });
  driver.join();
  // Grace drain: open loop means some completions are still in flight.
  const auto drain_deadline = Clock::now() + std::chrono::seconds(10);
  while (shared->outstanding.load(std::memory_order_relaxed) > 0 &&
         Clock::now() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::lock_guard<std::mutex> lock(shared->mu);
  LoadResult result = std::move(shared->r);
  result.offered = offered;
  result.unresolved = offered - result.Resolved();
  result.achieved_qps = double(offered) / seconds;
  return result;
}

/// Closed-loop capacity probe: `clients` threads keep `pipeline` requests in
/// flight each; the sustained completion rate is what "capacity" means for
/// every over-capacity multiplier below.
double MeasureCapacityQps(const SubmitFn& submit, const data::Workload& wl,
                          size_t total, size_t clients, size_t pipeline) {
  std::atomic<size_t> remaining{total};
  const int64_t max_qi = int64_t(wl.queries.rows()) - 1;
  const size_t dim = wl.queries.cols();
  util::Stopwatch watch;
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      util::Rng rng(101 + c);
      std::vector<std::future<void>> in_flight;
      in_flight.reserve(pipeline);
      for (;;) {
        size_t batch = 0;
        while (batch < pipeline) {
          size_t left = remaining.fetch_sub(1);
          if (left == 0 || left > total) {  // Underflow guard.
            remaining.store(0);
            break;
          }
          size_t qi = size_t(rng.UniformInt(0, max_qi));
          float thr = wl.tmax * float(rng.UniformInt(1, 16)) / 16.0f;
          auto done = std::make_shared<std::promise<void>>();
          in_flight.push_back(done->get_future());
          submit(serve::EstimateRequest::Point(wl.queries.row(qi), dim, thr),
                 [done](serve::EstimateResponse&&, std::exception_ptr) {
                   done->set_value();
                 });
          ++batch;
        }
        for (auto& f : in_flight) f.get();
        in_flight.clear();
        if (batch < pipeline) return;
      }
    });
  }
  for (auto& th : threads) th.join();
  return double(total) / watch.ElapsedSeconds();
}

/// Inflight budget sized from measured capacity: admit about `budget_ms`
/// worth of work, so accepted queueing delay stays bounded near the latency
/// target instead of scaling with the burst. The default budget is 1 ms —
/// under overload the effective service rate is below the healthy measured
/// capacity (the arrival driver and completion accounting share the cores),
/// so a tighter ticket budget is what actually keeps accepted p99 within
/// the 3x-steady gate.
size_t InflightForCapacity(double capacity_qps, double budget_ms) {
  double tickets = capacity_qps * budget_ms / 1000.0;
  return size_t(std::min(512.0, std::max(8.0, tickets)));
}

serve::ServerConfig BaseServerConfig(size_t dim) {
  serve::ServerConfig scfg;
  scfg.dim = dim;
  scfg.enable_batching = true;
  scfg.enable_cache = false;
  scfg.scheduler.max_batch = 64;
  scfg.scheduler.max_delay_ms = 0.2;
  return scfg;
}

// -------------------------------------------------------------- scenarios ---

struct ScenarioContext {
  const data::Database* db;
  const data::Workload* wl;
  std::shared_ptr<core::SelNetCt> model;
  bool smoke = false;
  size_t cores = 1;

  double steady_seconds() const { return smoke ? 0.8 : 2.0; }
  double storm_seconds() const { return smoke ? 1.5 : 4.0; }
  size_t capacity_requests() const { return smoke ? 3000 : 8000; }
};

void CommonLoadMetrics(Report* rep, const std::string& prefix,
                       const LoadResult& r) {
  rep->AddMetric(prefix + "_offered", double(r.offered));
  rep->AddMetric(prefix + "_achieved_qps", r.achieved_qps);
  rep->AddMetric(prefix + "_ok", double(r.ok));
  rep->AddMetric(prefix + "_degraded", double(r.degraded));
  rep->AddMetric(prefix + "_typed_sheds", double(r.TypedTotal()));
  rep->AddMetric(prefix + "_untyped_errors", double(r.untyped));
  rep->AddMetric(prefix + "_unresolved", double(r.unresolved));
}

/// Every failed arrival must carry a machine-readable shed reason; 1.0 means
/// "all failures typed AND at least one overload rejection actually
/// happened" — an idle harness scores 0, loudly.
double TypedRejectionFraction(const LoadResult& r) {
  uint64_t failures = r.TypedTotal() + r.untyped + r.unresolved;
  if (failures == 0) return 0.0;
  return double(r.TypedTotal()) / double(failures);
}

Report RunBurst(const ScenarioContext& ctx) {
  bench::PrintBanner("scenario: burst (open-loop square wave at 2x capacity)");
  Report rep;
  const data::Workload& wl = *ctx.wl;

  // Capacity is measured on a twin server WITHOUT admission, so the probe
  // itself is never shed.
  serve::SelNetServer probe(BaseServerConfig(ctx.db->dim()));
  probe.Publish(ctx.model);
  SubmitFn probe_submit = [&probe](serve::EstimateRequest req,
                                   serve::SelNetServer::ResponseFn done) {
    probe.SubmitWith(std::move(req), std::move(done));
  };
  double capacity =
      MeasureCapacityQps(probe_submit, wl, ctx.capacity_requests(), 2, 32);
  probe.Drain();

  serve::ServerConfig scfg = BaseServerConfig(ctx.db->dim());
  scfg.admission.enabled = true;
  scfg.admission.max_inflight = InflightForCapacity(capacity, 0.25);
  serve::SelNetServer server(scfg);
  server.Publish(ctx.model);
  SubmitFn submit = [&server](serve::EstimateRequest req,
                              serve::SelNetServer::ResponseFn done) {
    server.SubmitWith(std::move(req), std::move(done));
  };

  // Interleaved best-of-3, each side kept at its own best — the same
  // discipline the tracing-overhead gate uses (min traced / min untraced).
  // Interleaving keeps slow drift (thermal, box load) from landing on only
  // one side; taking each side's minimum discards the 1-core scheduler
  // noise that occasionally triples a single p99 sample.
  double steady_p99 = 0.0;
  double burst_accepted_p99 = 0.0;
  LoadResult steady, burst;
  const double phase_s = 0.1;
  for (int rep = 0; rep < 3; ++rep) {
    LoadResult steady_i = DriveOpenLoop(
        submit, wl, ctx.steady_seconds(),
        [&](double) { return 0.55 * capacity; },
        /*deadline_ms=*/50.0, nullptr, /*seed=*/17 + uint64_t(rep));
    // Square-wave burst: 100 ms at 2x capacity, 100 ms at 0.3x. Burst
    // traffic declares a 2 ms deadline SLO — the deadline-aware scheduler
    // is what bounds accepted-request latency under overload (rows that
    // would blow the budget become typed deadline_exceeded rejections
    // instead of slow completions).
    LoadResult burst_i = DriveOpenLoop(
        submit, wl, ctx.storm_seconds(),
        [&](double t) {
          bool high = std::fmod(t, 2.0 * phase_s) < phase_s;
          return high ? 2.0 * capacity : 0.3 * capacity;
        },
        /*deadline_ms=*/2.0, nullptr, /*seed=*/31 + uint64_t(rep));
    double s99 = Percentile(steady_i.accepted_ms, 0.99);
    double b99 = Percentile(burst_i.accepted_ms, 0.99);
    if (rep == 0 || s99 < steady_p99) {
      steady_p99 = s99;
      steady = std::move(steady_i);
    }
    if (rep == 0 || b99 < burst_accepted_p99) {
      burst_accepted_p99 = b99;
      burst = std::move(burst_i);
    }
  }
  // Denominator floors at 1 ms: steady p99 on a quiet box sinks toward the
  // batch max_delay + timer quantum, and a ratio against sub-millisecond
  // timer noise would measure the clock, not the admission mechanism.
  double p99_ratio = burst_accepted_p99 / std::max(steady_p99, 1.0);
  // A shorter wave of tight-deadline traffic on the same server: budgets
  // near the queueing delay, so rows genuinely expire while queued (those
  // rejections are typed deadline_exceeded, not admission sheds).
  LoadResult tight_wave = DriveOpenLoop(
      submit, wl, std::min(1.0, ctx.storm_seconds() / 3.0),
      [&](double) { return 1.5 * capacity; },
      /*deadline_ms=*/2.0, nullptr, /*seed=*/37);
  server.Drain();

  serve::StatsSnapshot snap = server.stats().Snapshot();
  std::vector<double> shed_ms = burst.admission_shed_ms;
  shed_ms.insert(shed_ms.end(), tight_wave.admission_shed_ms.begin(),
                 tight_wave.admission_shed_ms.end());
  double shed_p99 = Percentile(shed_ms, 0.99);

  std::printf(
      "  capacity %.0f qps | steady p99 %.3f ms | burst accepted p99 %.3f ms "
      "| admission sheds %llu (p99 %.3f ms) | deadline sheds %llu | rows "
      "dropped %llu, predicted-after-expiry %llu\n",
      capacity, steady_p99, burst_accepted_p99,
      (unsigned long long)shed_ms.size(), shed_p99,
      (unsigned long long)(burst.typed[size_t(
                               serve::ShedReason::kDeadlineExpired)] +
                           tight_wave.typed[size_t(
                               serve::ShedReason::kDeadlineExpired)]),
      (unsigned long long)snap.deadline_rows_dropped,
      (unsigned long long)snap.deadline_rows_predicted);

  rep.AddGate("burst_admission_shed_p99_ms", shed_p99, "<=", 2.0);
  rep.AddGate("burst_accepted_p99_vs_steady", p99_ratio, "<=", 3.0);
  rep.AddGate("burst_deadline_rows_predicted",
              double(snap.deadline_rows_predicted), "<=", 0.0);
  double typed_fraction = std::min(TypedRejectionFraction(burst),
                                   TypedRejectionFraction(tight_wave));
  rep.AddGate("burst_typed_rejection_fraction", typed_fraction, ">=", 1.0);

  rep.AddMetric("burst_capacity_qps", capacity);
  rep.AddMetric("burst_steady_p99_ms", steady_p99);
  rep.AddMetric("burst_accepted_p99_ms", burst_accepted_p99);
  rep.AddMetric("burst_admission_shed_p99_ms", shed_p99);
  rep.AddMetric("burst_deadline_rows_dropped",
                double(snap.deadline_rows_dropped));
  rep.AddMetric("burst_max_inflight", double(scfg.admission.max_inflight));
  CommonLoadMetrics(&rep, "burst", burst);
  CommonLoadMetrics(&rep, "burst_steady", steady);
  CommonLoadMetrics(&rep, "burst_tight", tight_wave);
  PrintGates(rep);
  return rep;
}

Report RunSkew(const ScenarioContext& ctx) {
  bench::PrintBanner("scenario: skew (Zipf routes on the sharded ring)");
  Report rep;
  const data::Workload& wl = *ctx.wl;
  const size_t kShards = 2;
  const size_t kRoutes = 8;
  std::vector<std::string> routes;
  for (size_t r = 0; r < kRoutes; ++r) {
    routes.push_back("route" + std::to_string(r));
  }

  auto make_ring = [&](bool admission, size_t max_inflight) {
    serve::ShardedConfig scfg;
    scfg.server = BaseServerConfig(ctx.db->dim());
    scfg.server.admission.enabled = admission;
    scfg.server.admission.max_inflight = max_inflight;
    scfg.num_shards = kShards;
    scfg.threads_per_shard = 1;
    auto reg = std::make_unique<serve::ShardedRegistry>(scfg);
    for (const auto& route : routes) reg->Publish(route, ctx.model);
    return reg;
  };

  // Zipf(1.2) over the routes: route r drawn with weight 1 / (r+1)^1.2.
  std::vector<double> cdf(kRoutes);
  double total = 0.0;
  for (size_t r = 0; r < kRoutes; ++r) {
    total += 1.0 / std::pow(double(r + 1), 1.2);
    cdf[r] = total;
  }
  for (double& c : cdf) c /= total;
  auto zipf_route = [cdf, routes](util::Rng& rng) {
    double u = rng.Uniform();
    size_t idx = size_t(std::lower_bound(cdf.begin(), cdf.end(), u) -
                        cdf.begin());
    return routes[std::min(idx, routes.size() - 1)];
  };
  util::Rng probe_rng(5);
  auto uniform_route = [routes](util::Rng& rng) {
    return routes[size_t(rng.UniformInt(0, int64_t(routes.size()) - 1))];
  };

  auto probe = make_ring(false, 0);
  SubmitFn probe_submit = [&](serve::EstimateRequest req,
                              serve::SelNetServer::ResponseFn done) {
    probe->SubmitWith(std::move(req), std::move(done));
  };
  // Capacity probe routes UNIFORMLY — it measures the ring's healthy
  // aggregate rate, not the skewed regime under test.
  double capacity = MeasureCapacityQps(
      [&](serve::EstimateRequest req, serve::SelNetServer::ResponseFn done) {
        req.model = uniform_route(probe_rng);
        probe->SubmitWith(std::move(req), std::move(done));
      },
      wl, ctx.capacity_requests(), 2, 32);
  probe->Drain();
  probe.reset();

  auto ring = make_ring(true, InflightForCapacity(capacity / kShards, 0.25));
  SubmitFn submit = [&](serve::EstimateRequest req,
                        serve::SelNetServer::ResponseFn done) {
    ring->SubmitWith(std::move(req), std::move(done));
  };

  LoadResult steady = DriveOpenLoop(
      submit, wl, ctx.steady_seconds(), [&](double) { return 0.4 * capacity; },
      /*deadline_ms=*/50.0, zipf_route, /*seed=*/43);
  double steady_p99 = Percentile(steady.accepted_ms, 0.99);

  LoadResult skew = DriveOpenLoop(
      submit, wl, ctx.storm_seconds(), [&](double) { return 1.5 * capacity; },
      /*deadline_ms=*/50.0, zipf_route, /*seed=*/47);
  ring->Drain();
  double skew_p99 = Percentile(skew.accepted_ms, 0.99);
  double p99_ratio = steady_p99 > 0 ? skew_p99 / steady_p99 : 0.0;

  std::vector<serve::StatsSnapshot> per_shard = ring->ShardSnapshots();
  uint64_t min_shard_requests = UINT64_MAX;
  for (size_t s = 0; s < per_shard.size(); ++s) {
    std::printf("  shard %zu: %llu requests, %llu sheds\n", s,
                (unsigned long long)per_shard[s].requests,
                (unsigned long long)per_shard[s].shed_total);
    min_shard_requests =
        std::min(min_shard_requests, per_shard[s].requests);
  }
  double resolved_fraction =
      skew.offered > 0 ? double(skew.Resolved()) / double(skew.offered) : 0.0;
  std::printf(
      "  ring capacity %.0f qps | steady p99 %.3f ms | skew accepted p99 "
      "%.3f ms | typed sheds %llu | resolved %.6f\n",
      capacity, steady_p99, skew_p99, (unsigned long long)skew.TypedTotal(),
      resolved_fraction);

  rep.AddGate("skew_all_arrivals_resolved", resolved_fraction, ">=", 1.0);
  rep.AddGate("skew_typed_rejection_fraction", TypedRejectionFraction(skew),
              ">=", 1.0);
  rep.AddGate("skew_both_shards_served", double(min_shard_requests), ">=",
              1.0);
  // Accepted tail under skew needs the shard pools actually parallel; on one
  // core two pools timeslice and the tail is scheduler noise, not a serving
  // property.
  const bool multi_core = ctx.cores >= 2;
  rep.AddGate("skew_accepted_p99_vs_steady", p99_ratio, "<=", 3.0, multi_core,
              "needs >= 2 cores to run shard pools in parallel; " +
                  std::to_string(ctx.cores) + " core(s) present");

  rep.AddMetric("skew_capacity_qps", capacity);
  rep.AddMetric("skew_steady_p99_ms", steady_p99);
  rep.AddMetric("skew_accepted_p99_ms", skew_p99);
  rep.AddMetric("skew_min_shard_requests", double(min_shard_requests));
  CommonLoadMetrics(&rep, "skew", skew);
  PrintGates(rep);
  return rep;
}

Report RunDrift(const ScenarioContext& ctx) {
  bench::PrintBanner("scenario: drift (permanent retrain storm + overload)");
  Report rep;
  const data::Workload& wl = *ctx.wl;
  const data::Database& db = *ctx.db;

  serve::SelNetServer probe(BaseServerConfig(db.dim()));
  probe.Publish(ctx.model);
  double capacity = MeasureCapacityQps(
      [&](serve::EstimateRequest req, serve::SelNetServer::ResponseFn done) {
        probe.SubmitWith(std::move(req), std::move(done));
      },
      wl, ctx.capacity_requests(), 2, 32);
  probe.Drain();

  serve::ServerConfig scfg = BaseServerConfig(db.dim());
  scfg.admission.enabled = true;
  scfg.admission.max_inflight = InflightForCapacity(capacity, 0.25);
  serve::SelNetServer server(scfg);
  server.Publish(ctx.model);
  SubmitFn submit = [&server](serve::EstimateRequest req,
                              serve::SelNetServer::ResponseFn done) {
    server.SubmitWith(std::move(req), std::move(done));
  };

  // Drift storm: threshold 0 means every upward validation drift retrains;
  // the feeder duplicates validation-split queries so every op drifts.
  serve::UpdatePipelineConfig ucfg;
  ucfg.policy.mae_drift_fraction = 0.0;
  ucfg.policy.max_epochs = 2;
  ucfg.policy.patience = 1;
  serve::LiveUpdatePipeline& pipeline =
      server.AttachUpdatePipeline(ucfg, db, wl);
  std::vector<uint32_t> valid_qids;
  for (const auto& s : wl.valid) valid_qids.push_back(s.query_id);
  std::atomic<bool> feeding{true};
  std::thread feeder([&] {
    size_t round = 0;
    while (feeding.load()) {
      core::UpdateOp op;
      op.is_insert = true;
      const float* hot = wl.queries.row(valid_qids[round % valid_qids.size()]);
      for (int i = 0; i < 30; ++i) {
        op.vectors.emplace_back(hot, hot + db.dim());
      }
      pipeline.Submit(std::move(op));
      ++round;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });
  util::Backoff poll({/*base_ms=*/1.0, /*cap_ms=*/20.0}, /*seed=*/11);
  while (pipeline.Snapshot().retrains_triggered == 0 &&
         pipeline.Snapshot().ops_applied < 50) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(poll.NextDelayMs()));
  }

  LoadResult storm = DriveOpenLoop(
      submit, wl, ctx.storm_seconds(), [&](double) { return 1.2 * capacity; },
      /*deadline_ms=*/50.0, nullptr, /*seed=*/53);
  feeding.store(false);
  feeder.join();
  serve::UpdatePipelineState pstate = pipeline.Snapshot();
  server.DetachUpdatePipeline();
  server.Drain();
  serve::StatsSnapshot snap = server.stats().Snapshot();

  double storm_p99 = Percentile(storm.accepted_ms, 0.99);
  double resolved_fraction =
      storm.offered > 0 ? double(storm.Resolved()) / double(storm.offered)
                        : 0.0;
  std::printf(
      "  capacity %.0f qps | retrains %llu (%llu epochs, %llu republishes) | "
      "storm accepted p99 %.3f ms | typed sheds %llu | resolved %.6f\n",
      capacity, (unsigned long long)pstate.retrains_triggered,
      (unsigned long long)pstate.epochs_run,
      (unsigned long long)pstate.publishes, storm_p99,
      (unsigned long long)storm.TypedTotal(), resolved_fraction);

  rep.AddGate("drift_retrains_triggered", double(pstate.retrains_triggered),
              ">=", 1.0);
  rep.AddGate("drift_typed_rejection_fraction", TypedRejectionFraction(storm),
              ">=", 1.0);
  rep.AddGate("drift_deadline_rows_predicted",
              double(snap.deadline_rows_predicted), "<=", 0.0);
  rep.AddGate("drift_all_arrivals_resolved", resolved_fraction, ">=", 1.0);

  rep.AddMetric("drift_capacity_qps", capacity);
  rep.AddMetric("drift_accepted_p99_ms", storm_p99);
  rep.AddMetric("drift_retrains", double(pstate.retrains_triggered));
  rep.AddMetric("drift_republishes", double(pstate.publishes));
  CommonLoadMetrics(&rep, "drift", storm);
  PrintGates(rep);
  return rep;
}

Report RunChurn(const ScenarioContext& ctx) {
  bench::PrintBanner("scenario: churn (frontend connect/disconnect storm)");
  Report rep;
  const data::Workload& wl = *ctx.wl;

  serve::ServerConfig scfg = BaseServerConfig(ctx.db->dim());
  scfg.admission.enabled = true;
  scfg.admission.max_inflight = 64;
  serve::SelNetServer server(scfg);
  server.Publish(ctx.model);
  serve::NetFrontend frontend(serve::FrontendConfig{}, &server);
  if (!frontend.status().ok()) {
    std::printf("  frontend unavailable: %s\n",
                frontend.status().ToString().c_str());
    rep.AddGate("churn_frontend_alive", 0.0, ">=", 1.0);
    return rep;
  }
  const uint16_t port = frontend.port();
  const double seconds = ctx.storm_seconds();
  const size_t dim = ctx.db->dim();

  // Churners: connect, fire a few requests, read some replies or none at
  // all, vanish — often with responses still in flight.
  std::atomic<bool> running{true};
  std::atomic<uint64_t> churn_connects{0};
  std::vector<std::thread> churners;
  for (size_t c = 0; c < 2; ++c) {
    churners.emplace_back([&, c] {
      util::Rng rng(61 + c);
      while (running.load()) {
        serve::NetClient client;
        if (!client.Connect("127.0.0.1", port).ok()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        churn_connects.fetch_add(1);
        client.set_recv_timeout_ms(200);
        int sends = int(rng.UniformInt(1, 3));
        for (int i = 0; i < sends; ++i) {
          size_t qi =
              size_t(rng.UniformInt(0, int64_t(wl.queries.rows()) - 1));
          float thr = wl.tmax * float(rng.UniformInt(1, 16)) / 16.0f;
          serve::EstimateRequest req = serve::EstimateRequest::Point(
              wl.queries.row(qi), dim, thr);
          req.tag = uint64_t(i + 1);
          if (!client.SendRaw(serve::SerializeRequest(req) + "\n").ok()) break;
        }
        // Half the time read one reply; otherwise disconnect mid-response.
        if (rng.Bernoulli(0.5)) client.ReadLine().status();
        client.Close();
      }
    });
  }

  // The well-behaved client: blocking round-trips with a receive bound. A
  // typed overload rejection is a correct answer; an I/O error or timeout
  // is not.
  uint64_t stable_ok = 0, stable_typed = 0, stable_bad = 0;
  {
    serve::NetClient stable;
    bool connected = stable.Connect("127.0.0.1", port).ok();
    if (connected) stable.set_recv_timeout_ms(2000);
    util::Rng rng(71);
    const auto end = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                        std::chrono::duration<double>(seconds));
    while (connected && Clock::now() < end) {
      size_t qi = size_t(rng.UniformInt(0, int64_t(wl.queries.rows()) - 1));
      float thr = wl.tmax * float(rng.UniformInt(1, 16)) / 16.0f;
      util::Result<serve::EstimateResponse> resp = stable.Roundtrip(
          serve::EstimateRequest::Point(wl.queries.row(qi), dim, thr));
      if (resp.ok()) {
        ++stable_ok;
      } else if (resp.status().code() == util::StatusCode::kUnavailable ||
                 resp.status().code() ==
                     util::StatusCode::kDeadlineExceeded) {
        ++stable_typed;
      } else {
        ++stable_bad;
      }
    }
    stable.Close();
  }
  running.store(false);
  for (auto& th : churners) th.join();

  // The frontend must still answer a clean round-trip after the storm.
  double alive = 0.0;
  {
    serve::NetClient post;
    if (post.Connect("127.0.0.1", port).ok()) {
      post.set_recv_timeout_ms(2000);
      util::Result<serve::EstimateResponse> resp = post.Roundtrip(
          serve::EstimateRequest::Point(wl.queries.row(0), dim,
                                        0.5f * wl.tmax));
      alive = resp.ok() ? 1.0 : 0.0;
    }
    post.Close();
  }
  frontend.Stop();
  server.Drain();

  uint64_t stable_total = stable_ok + stable_typed + stable_bad;
  double stable_fraction =
      stable_total > 0
          ? double(stable_ok + stable_typed) / double(stable_total)
          : 0.0;
  serve::FrontendStats fstats = frontend.Stats();
  std::printf(
      "  churn connects %llu | stable ok %llu, typed %llu, bad %llu | "
      "frontend accepted %llu, dropped %llu, parse errors %llu\n",
      (unsigned long long)churn_connects.load(),
      (unsigned long long)stable_ok, (unsigned long long)stable_typed,
      (unsigned long long)stable_bad,
      (unsigned long long)fstats.connections_accepted,
      (unsigned long long)fstats.connections_dropped,
      (unsigned long long)fstats.parse_errors);

  rep.AddGate("churn_connections", double(churn_connects.load()), ">=", 20.0);
  rep.AddGate("churn_stable_success_fraction", stable_fraction, ">=", 0.99);
  rep.AddGate("churn_frontend_alive", alive, ">=", 1.0);

  rep.AddMetric("churn_connects", double(churn_connects.load()));
  rep.AddMetric("churn_stable_ok", double(stable_ok));
  rep.AddMetric("churn_stable_typed", double(stable_typed));
  rep.AddMetric("churn_stable_bad", double(stable_bad));
  rep.AddMetric("churn_frontend_dropped",
                double(fstats.connections_dropped));
  PrintGates(rep);
  return rep;
}

// ------------------------------------------------------- fault injection ---

/// One `shard_node` child process: the harness re-execs its own binary with
/// the hidden --shard-node-child flag, so the shard under test is a REAL
/// separate process it can SIGKILL and SIGSTOP — in-process fault injection
/// cannot produce a half-dead TCP peer.
struct NodeProc {
  pid_t pid = -1;
  uint16_t port = 0;
  std::string port_file;

  bool ok() const { return pid > 0 && port != 0; }
};

std::string SelfExe() {
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  return buf;
}

/// Fork + exec a shard_node child; blocks until its port file appears (the
/// write-then-rename handshake means "bound and serving"). `port` 0 asks the
/// node for an ephemeral port, read back from the file; a nonzero port pins
/// the reborn process to the crashed one's address.
NodeProc SpawnNode(size_t dim, uint16_t port, int idx) {
  NodeProc node;
  node.port_file =
      "selnet_fault_" + std::to_string(::getpid()) + "_" +
      std::to_string(idx) + ".port";
  std::remove(node.port_file.c_str());
  std::string exe = SelfExe();
  if (exe.empty()) return node;
  std::string port_s = std::to_string(unsigned(port));
  std::string dim_s = std::to_string(dim);
  pid_t pid = ::fork();
  if (pid == 0) {
    ::execl(exe.c_str(), exe.c_str(), "--shard-node-child",
            node.port_file.c_str(), port_s.c_str(), dim_s.c_str(),
            (char*)nullptr);
    _exit(127);
  }
  if (pid < 0) return node;
  node.pid = pid;
  util::Backoff poll({/*base_ms=*/1.0, /*cap_ms=*/50.0}, /*seed=*/7);
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while (Clock::now() < deadline) {
    std::ifstream in(node.port_file);
    unsigned p = 0;
    if (in && (in >> p) && p != 0) {
      node.port = uint16_t(p);
      break;
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(poll.NextDelayMs()));
  }
  return node;
}

/// Signal + reap. SIGKILL is the crash path (no goodbye on the wire);
/// SIGTERM is the clean shutdown at scenario end.
void ReapNode(NodeProc* node, int sig) {
  if (node->pid <= 0) return;
  ::kill(node->pid, sig);
  int status = 0;
  ::waitpid(node->pid, &status, 0);
  node->pid = -1;
  std::remove(node->port_file.c_str());
}

bool WaitForSlotHealth(serve::ShardedRegistry* reg, size_t slot,
                       serve::ShardHealth want, double timeout_s) {
  util::Backoff poll({/*base_ms=*/2.0, /*cap_ms=*/50.0}, /*seed=*/13);
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  while (Clock::now() < deadline) {
    if (reg->slot_health(slot) == want) return true;
    reg->NudgeHealth();
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(poll.NextDelayMs()));
  }
  return reg->slot_health(slot) == want;
}

/// First route name whose primary replica is `slot` (placement is a
/// deterministic hash, so scan until one lands there).
std::string RouteWithPrimary(const serve::ShardedRegistry& reg, size_t slot) {
  for (int i = 0; i < 10000; ++i) {
    std::string name = "fault-route-" + std::to_string(i);
    if (reg.ShardOf(name) == slot) return name;
  }
  return "fault-route-0";
}

struct FaultTraffic {
  uint64_t ok = 0;
  uint64_t failed = 0;
  std::vector<double> ms;
};

/// Closed-loop waves of `wave` concurrent submits against one route; fires
/// `trigger` between two submissions once `trigger_at` requests are out —
/// i.e. with a wave of requests genuinely in flight on the wire.
FaultTraffic DriveFaultTraffic(serve::ShardedRegistry* reg,
                               const data::Workload& wl,
                               const std::string& route, size_t total,
                               size_t wave, size_t trigger_at,
                               const std::function<void()>& trigger,
                               uint64_t seed) {
  FaultTraffic out;
  util::Rng rng(seed);
  const size_t dim = wl.queries.cols();
  const int64_t max_qi = int64_t(wl.queries.rows()) - 1;
  bool fired = false;
  size_t sent = 0;
  while (sent < total) {
    std::vector<std::pair<std::future<serve::EstimateResponse>,
                          Clock::time_point>>
        batch;
    for (size_t i = 0; i < wave && sent < total; ++i, ++sent) {
      if (!fired && trigger && sent >= trigger_at) {
        trigger();
        fired = true;
      }
      size_t qi = size_t(rng.UniformInt(0, max_qi));
      float thr = wl.tmax * float(rng.UniformInt(1, 16)) / 16.0f;
      batch.emplace_back(
          reg->Submit(serve::EstimateRequest::Point(wl.queries.row(qi), dim,
                                                    thr, route)),
          Clock::now());
    }
    for (auto& [fut, t0] : batch) {
      try {
        fut.get();
        ++out.ok;
        out.ms.push_back(std::chrono::duration<double, std::milli>(
                             Clock::now() - t0)
                             .count());
      } catch (const std::exception&) {
        ++out.failed;
      }
    }
  }
  if (!fired && trigger) trigger();
  return out;
}

Report RunFault(const ScenarioContext& ctx) {
  bench::PrintBanner(
      "scenario: fault (kill -9 / SIGSTOP / blackhole / rejoin, R=2)");
  Report rep;
  const data::Workload& wl = *ctx.wl;
  const size_t dim = ctx.db->dim();

  NodeProc node_a = SpawnNode(dim, 0, 0);
  NodeProc node_b = SpawnNode(dim, 0, 1);
  if (!node_a.ok() || !node_b.ok()) {
    std::printf("  cannot spawn shard_node children (self exe '%s')\n",
                SelfExe().c_str());
    rep.AddGate("fault_fleet_admitted", 0.0, ">=", 1.0);
    ReapNode(&node_a, SIGKILL);
    ReapNode(&node_b, SIGKILL);
    return rep;
  }

  // Fleet: 1 in-process shard + 2 shard_node processes, every route on 2
  // replicas. Short recv timeout: the gray-shard phase pays it once per
  // in-flight request before failover, so it IS the detection latency.
  serve::ShardedConfig fcfg;
  fcfg.server = BaseServerConfig(dim);
  fcfg.num_shards = 1;
  fcfg.threads_per_shard = 1;
  fcfg.replication = 2;
  fcfg.health_interval_ms = 25.0;
  serve::RemoteShardConfig rcfg;
  rcfg.address = "127.0.0.1";
  rcfg.recv_timeout_ms = 300;
  rcfg.admin_timeout_ms = 1000;
  rcfg.port = node_a.port;
  fcfg.remotes.push_back(rcfg);
  rcfg.port = node_b.port;
  fcfg.remotes.push_back(rcfg);
  auto reg = std::make_unique<serve::ShardedRegistry>(fcfg);
  const size_t kSlotA = 1;  // Slot 0 is the local shard.
  const size_t kSlotB = 2;

  double admitted =
      (reg->slot_health(kSlotA) == serve::ShardHealth::kHealthy &&
       reg->slot_health(kSlotB) == serve::ShardHealth::kHealthy)
          ? 1.0
          : 0.0;
  rep.AddGate("fault_fleet_admitted", admitted, ">=", 1.0);
  if (admitted < 1.0) {
    std::printf("  fleet admission failed: A=%s B=%s\n",
                serve::ShardHealthName(reg->slot_health(kSlotA)),
                serve::ShardHealthName(reg->slot_health(kSlotB)));
    reg.reset();
    ReapNode(&node_a, SIGKILL);
    ReapNode(&node_b, SIGKILL);
    PrintGates(rep);
    return rep;
  }

  // Victim route: primary on node A, second replica wherever the ring puts
  // it — both stay serving, so every fault below has a live fallback.
  const std::string route = RouteWithPrimary(*reg, kSlotA);
  reg->Publish(route, ctx.model);

  // Reference answers from the healthy fleet (wire floats round-trip
  // shortest-form, so these are exact bits, not approximations).
  const size_t kProbes = 10;
  std::vector<serve::EstimateRequest> probes;
  std::vector<float> reference;
  for (size_t i = 0; i < kProbes; ++i) {
    size_t qi = i % size_t(wl.queries.rows());
    float thr = wl.tmax * float(i % 8 + 1) / 8.0f;
    probes.push_back(
        serve::EstimateRequest::Point(wl.queries.row(qi), dim, thr, route));
  }
  bool reference_ok = true;
  for (const auto& p : probes) {
    try {
      reference.push_back(reg->Submit(p).get().estimates.at(0));
    } catch (const std::exception& e) {
      std::printf("  reference probe failed: %s\n", e.what());
      reference_ok = false;
      break;
    }
  }
  rep.AddGate("fault_reference_served", reference_ok ? 1.0 : 0.0, ">=", 1.0);

  const size_t kill_total = ctx.smoke ? 160 : 320;
  const size_t gray_total = ctx.smoke ? 48 : 96;
  const size_t base_total = ctx.smoke ? 80 : 160;

  // Healthy baseline for the failover-latency ratio gate.
  FaultTraffic baseline = DriveFaultTraffic(reg.get(), wl, route, base_total,
                                            8, 0, nullptr, /*seed=*/83);
  double base_p99 = Percentile(baseline.ms, 0.99);

  // --- Phase 1: SIGSTOP gray shard. The process is alive and its TCP stack
  // answers SYNs, so only the recv-timeout path can catch it: each in-flight
  // request waits out recv_timeout_ms, fails over, and the first failure
  // marks the slot suspect so later waves route around it.
  FaultTraffic gray = DriveFaultTraffic(
      reg.get(), wl, route, gray_total, 6, 6,
      [&] { ::kill(node_a.pid, SIGSTOP); }, /*seed=*/89);
  ::kill(node_a.pid, SIGCONT);
  bool gray_readmitted =
      WaitForSlotHealth(reg.get(), kSlotA, serve::ShardHealth::kHealthy, 15.0);
  std::printf(
      "  gray: %llu ok, %llu failed | slot A %s after SIGCONT\n",
      (unsigned long long)gray.ok, (unsigned long long)gray.failed,
      serve::ShardHealthName(reg->slot_health(kSlotA)));

  // --- Phase 2: kill -9 the primary mid-traffic. The acceptance criterion:
  // with R=2 not one client query may fail — the RST fails in-flight
  // requests over to the surviving replica.
  FaultTraffic kill9 = DriveFaultTraffic(
      reg.get(), wl, route, kill_total, 8, kill_total / 3,
      [&] { ReapNode(&node_a, SIGKILL); }, /*seed=*/97);
  double kill9_p99 = Percentile(kill9.ms, 0.99);
  std::printf("  kill9: %llu ok, %llu failed | p99 %.3f ms (baseline %.3f)\n",
              (unsigned long long)kill9.ok, (unsigned long long)kill9.failed,
              kill9_p99, base_p99);

  // --- Phase 3: crash-then-rejoin. The reborn process binds the SAME port
  // with an EMPTY registry; re-admission must re-publish from the retained
  // bytes before traffic resumes, then serve bit-identical answers.
  NodeProc reborn = SpawnNode(dim, node_a.port, 2);
  bool rejoined =
      reborn.ok() &&
      WaitForSlotHealth(reg.get(), kSlotA, serve::ShardHealth::kHealthy, 15.0);
  size_t identical = 0;
  if (rejoined) {
    serve::NetClient direct;
    if (direct.Connect("127.0.0.1", reborn.port).ok()) {
      direct.set_recv_timeout_ms(2000);
      for (size_t i = 0; i < probes.size() && i < reference.size(); ++i) {
        util::Result<serve::EstimateResponse> resp =
            direct.Roundtrip(probes[i]);
        if (resp.ok() && resp.ValueOrDie().estimates.size() == 1 &&
            resp.ValueOrDie().estimates[0] == reference[i]) {
          ++identical;
        }
      }
      direct.Close();
    }
  }
  double rejoin_identical =
      (reference_ok && identical == reference.size()) ? 1.0 : 0.0;
  std::printf("  rejoin: %s | %zu/%zu probes bit-identical\n",
              rejoined ? "healthy" : "NOT healthy", identical,
              reference.size());

  reg->Drain();
  reg.reset();
  ReapNode(&reborn, SIGTERM);
  ReapNode(&node_b, SIGTERM);

  // --- Phase 4: connection blackhole. A bound listener that never accepts:
  // connect() succeeds against the kernel backlog, then nothing ever
  // answers. The admission probe must classify the endpoint dead (it never
  // acks) and traffic must flow through the healthy replica untouched.
  util::TcpListener hole;
  util::Status hole_st = hole.Listen("127.0.0.1", 0);
  FaultTraffic dark;
  double hole_not_healthy = 0.0;
  double dark_p99 = 0.0;
  if (hole_st.ok()) {
    serve::ShardedConfig bcfg;
    bcfg.server = BaseServerConfig(dim);
    bcfg.num_shards = 1;
    bcfg.threads_per_shard = 1;
    bcfg.replication = 2;
    bcfg.health_interval_ms = 50.0;
    serve::RemoteShardConfig hcfg;
    hcfg.address = "127.0.0.1";
    hcfg.port = hole.port();
    hcfg.recv_timeout_ms = 200;
    hcfg.admin_timeout_ms = 250;
    bcfg.remotes.push_back(hcfg);
    serve::ShardedRegistry dark_reg(bcfg);
    std::string dark_route = RouteWithPrimary(dark_reg, 1);
    dark_reg.Publish(dark_route, ctx.model);
    dark = DriveFaultTraffic(&dark_reg, wl, dark_route,
                             ctx.smoke ? 40 : 80, 8, 0, nullptr, /*seed=*/101);
    dark_p99 = Percentile(dark.ms, 0.99);
    hole_not_healthy =
        dark_reg.slot_health(1) != serve::ShardHealth::kHealthy ? 1.0 : 0.0;
    dark_reg.Drain();
  } else {
    std::printf("  blackhole listener unavailable: %s\n",
                hole_st.ToString().c_str());
  }
  std::printf(
      "  blackhole: %llu ok, %llu failed | p99 %.3f ms | hole slot %s\n",
      (unsigned long long)dark.ok, (unsigned long long)dark.failed, dark_p99,
      hole_not_healthy > 0 ? "quarantined" : "NOT quarantined");

  rep.AddGate("fault_gray_failed_queries", double(gray.failed), "<=", 0.0);
  rep.AddGate("fault_gray_readmitted", gray_readmitted ? 1.0 : 0.0, ">=", 1.0);
  rep.AddGate("fault_kill9_failed_queries", double(kill9.failed), "<=", 0.0);
  rep.AddGate("fault_rejoin_healthy", rejoined ? 1.0 : 0.0, ">=", 1.0);
  rep.AddGate("fault_rejoin_bit_identical", rejoin_identical, ">=", 1.0);
  rep.AddGate("fault_blackhole_failed_queries", double(dark.failed), "<=",
              0.0);
  rep.AddGate("fault_blackhole_quarantined", hole_not_healthy, ">=", 1.0);
  // The failover tail vs the healthy baseline needs the local shard pool,
  // the RemoteShard readers and the child processes actually in parallel;
  // on one core the ratio measures timeslicing, not failover.
  const bool multi_core = ctx.cores >= 2;
  double p99_ratio = kill9_p99 / std::max(base_p99, 1.0);
  rep.AddGate("fault_kill9_p99_vs_baseline", p99_ratio, "<=", 5.0, multi_core,
              "needs >= 2 cores to run fleet and driver in parallel; " +
                  std::to_string(ctx.cores) + " core(s) present");

  rep.AddMetric("fault_baseline_p99_ms", base_p99);
  rep.AddMetric("fault_kill9_p99_ms", kill9_p99);
  rep.AddMetric("fault_kill9_ok", double(kill9.ok));
  rep.AddMetric("fault_gray_ok", double(gray.ok));
  rep.AddMetric("fault_blackhole_ok", double(dark.ok));
  rep.AddMetric("fault_blackhole_p99_ms", dark_p99);
  rep.AddMetric("fault_rejoin_probes_identical", double(identical));
  PrintGates(rep);
  return rep;
}

// --------------------------------------------------------- metrics smoke ---

/// Fleet telemetry smoke: a 1-local + 1-remote fleet (real `shard_node`
/// child) serves traced traffic, then BOTH telemetry planes are scraped
/// over the wire — `{"cmd":"metrics"}` text exposition and
/// `{"cmd":"events"}` — from the coordinator and from the node, and linted.
/// `util::LintExposition` rejects an EMPTY page as well as a malformed one,
/// so a silently-dead metrics plane fails the gate, not just a crashed
/// process.
Report RunMetrics(const ScenarioContext& ctx) {
  bench::PrintBanner(
      "scenario: metrics (fleet telemetry smoke over the wire)");
  Report rep;
  const data::Workload& wl = *ctx.wl;
  const size_t dim = ctx.db->dim();

  NodeProc node = SpawnNode(dim, 0, 9);
  if (!node.ok()) {
    std::printf("  cannot spawn shard_node child (self exe '%s')\n",
                SelfExe().c_str());
    rep.AddGate("metrics_fleet_admitted", 0.0, ">=", 1.0);
    ReapNode(&node, SIGKILL);
    PrintGates(rep);
    return rep;
  }

  serve::ShardedConfig fcfg;
  fcfg.server = BaseServerConfig(dim);
  fcfg.num_shards = 1;
  fcfg.threads_per_shard = 1;
  fcfg.replication = 2;
  fcfg.health_interval_ms = 25.0;
  fcfg.scrape_interval_ms = 25.0;
  fcfg.node_id = "scenario-coordinator";
  serve::RemoteShardConfig rcfg;
  rcfg.address = "127.0.0.1";
  rcfg.port = node.port;
  rcfg.recv_timeout_ms = 1000;
  rcfg.admin_timeout_ms = 2000;
  fcfg.remotes.push_back(rcfg);
  auto reg = std::make_unique<serve::ShardedRegistry>(fcfg);
  const bool admitted =
      WaitForSlotHealth(reg.get(), 1, serve::ShardHealth::kHealthy, 10.0);
  rep.AddGate("metrics_fleet_admitted", admitted ? 1.0 : 0.0, ">=", 1.0);
  if (!admitted) {
    reg.reset();
    ReapNode(&node, SIGKILL);
    PrintGates(rep);
    return rep;
  }

  // One route primary on the remote (cross-process trace propagation), one
  // on the local shard; 1-in-4 requests carry an explicit trace.
  const std::string remote_route = RouteWithPrimary(*reg, 1);
  const std::string local_route = RouteWithPrimary(*reg, 0);
  reg->Publish(remote_route, ctx.model);
  reg->Publish(local_route, ctx.model);
  util::Rng rng(77);
  uint64_t served = 0;
  uint64_t failed = 0;
  for (int i = 0; i < 64; ++i) {
    size_t qi = size_t(rng.UniformInt(0, int64_t(wl.queries.rows()) - 1));
    float thr = wl.tmax * float(rng.UniformInt(1, 16)) / 16.0f;
    serve::EstimateRequest req = serve::EstimateRequest::Point(
        wl.queries.row(qi), dim, thr, (i % 2) ? remote_route : local_route);
    if (i % 4 == 0) req.trace = std::make_shared<serve::RequestTrace>();
    try {
      reg->Submit(std::move(req)).get();
      ++served;
    } catch (const std::exception&) {
      ++failed;
    }
  }
  rep.AddGate("metrics_traffic_failed", double(failed), "<=", 0.0);
  reg->ScrapeNow();  // Deterministic merge: don't race the 25 ms tick.

  double lint_ok = 0.0;
  double node_lint_ok = 0.0;
  double series_ok = 0.0;
  double events_ok = 0.0;
  double merged_ok = 0.0;
  double expo_bytes = 0.0;
  serve::NetFrontend frontend(serve::FrontendConfig{}, reg.get());
  if (!frontend.status().ok()) {
    std::printf("  coordinator frontend unavailable: %s\n",
                frontend.status().ToString().c_str());
  } else {
    serve::NetClient client;
    if (client.Connect("127.0.0.1", frontend.port()).ok()) {
      auto text = client.Metrics(1);
      if (text.ok()) {
        const std::string& expo = text.ValueOrDie();
        expo_bytes = double(expo.size());
        util::Status lint = util::LintExposition(expo);
        lint_ok = lint.ok() ? 1.0 : 0.0;
        if (!lint.ok()) {
          std::printf("  exposition lint: %s\n", lint.ToString().c_str());
        }
        const char* needles[] = {"selnet_requests_total", "selnet_slot_health",
                                 "selnet_scrape_total",
                                 "node=\"scenario-coordinator\""};
        series_ok = 1.0;
        for (const char* n : needles) {
          if (expo.find(n) == std::string::npos) {
            std::printf("  missing series: %s\n", n);
            series_ok = 0.0;
          }
        }
      } else {
        std::printf("  metrics fetch failed: %s\n",
                    text.status().ToString().c_str());
      }
      auto events = client.Admin("events", 2);
      events_ok = events.ok() && events.ValueOrDie().find("\"kind\":\"health\"") !=
                                     std::string::npos
                      ? 1.0
                      : 0.0;
    }
    // The node's own plane, scraped directly — a shard_node must expose a
    // valid page too, or fleet dashboards only ever see the coordinator.
    serve::NetClient node_client;
    if (node_client.Connect("127.0.0.1", node.port).ok()) {
      auto ntext = node_client.Metrics(3);
      node_lint_ok =
          ntext.ok() && util::LintExposition(ntext.ValueOrDie()).ok() ? 1.0
                                                                      : 0.0;
    }
  }
  serve::StatsSnapshot snap = reg->AggregateSnapshot();
  bool merged = snap.requests >= served && snap.slots.size() == 2 &&
                !snap.slots[1].node_id.empty();
  merged_ok = merged ? 1.0 : 0.0;
  if (!merged) {
    std::printf("  merge check: requests=%llu (served %llu) slots=%zu\n",
                (unsigned long long)snap.requests, (unsigned long long)served,
                snap.slots.size());
  }

  rep.AddGate("metrics_exposition_lint", lint_ok, ">=", 1.0);
  rep.AddGate("metrics_node_exposition_lint", node_lint_ok, ">=", 1.0);
  rep.AddGate("metrics_fleet_series_present", series_ok, ">=", 1.0);
  rep.AddGate("metrics_events_nonempty", events_ok, ">=", 1.0);
  rep.AddGate("metrics_scrape_merged", merged_ok, ">=", 1.0);
  rep.AddMetric("metrics_exposition_bytes", expo_bytes);
  rep.AddMetric("metrics_requests_served", double(served));

  reg->Drain();
  reg.reset();
  ReapNode(&node, SIGTERM);
  PrintGates(rep);
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  // Hidden re-exec hook: `scenarios --shard-node-child PORT_FILE PORT DIM`
  // becomes a real shard_node process — the fault scenario's children.
  if (argc >= 5 && std::strcmp(argv[1], "--shard-node-child") == 0) {
    serve::ShardNodeProcessOptions opts;
    opts.port_file = argv[2];
    opts.port = uint16_t(std::atoi(argv[3]));
    opts.dim = size_t(std::atoi(argv[4]));
    opts.threads = 1;
    return serve::RunShardNodeProcess(opts);
  }
  std::string json_path;
  bool smoke = false;
  std::vector<std::string> selected;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
      selected.push_back(argv[++i]);
    } else {
      std::printf("unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (selected.empty()) selected = {"burst", "skew", "drift", "churn"};

  bench::PrintBanner("Adversarial serving scenarios");

  data::SyntheticSpec spec;
  spec.n = 2000;
  spec.dim = 16;
  spec.num_clusters = 8;
  data::Database db(data::GenerateMixture(spec), data::Metric::kEuclidean);
  data::WorkloadSpec wspec;
  wspec.num_queries = 120;
  wspec.w = 8;
  wspec.max_sel_fraction = 0.1;
  data::Workload wl = data::GenerateWorkload(db, wspec);

  core::SelNetConfig cfg;
  cfg.input_dim = db.dim();
  cfg.tmax = wl.tmax;
  cfg.num_control = 12;
  eval::TrainContext ctx_train;
  ctx_train.db = &db;
  ctx_train.workload = &wl;
  ctx_train.epochs = 3;  // Overload behavior does not depend on accuracy.
  auto model = std::make_shared<core::SelNetCt>(cfg);
  model->Fit(ctx_train);

  ScenarioContext ctx;
  ctx.db = &db;
  ctx.wl = &wl;
  ctx.model = model;
  ctx.smoke = smoke;
  ctx.cores = std::max<size_t>(1, std::thread::hardware_concurrency());

  Report all;
  for (const std::string& name : selected) {
    Report rep;
    if (name == "burst") {
      rep = RunBurst(ctx);
    } else if (name == "skew") {
      rep = RunSkew(ctx);
    } else if (name == "drift") {
      rep = RunDrift(ctx);
    } else if (name == "churn") {
      rep = RunChurn(ctx);
    } else if (name == "fault") {
      rep = RunFault(ctx);
    } else if (name == "metrics") {
      rep = RunMetrics(ctx);
    } else {
      std::printf(
          "unknown scenario: %s (have burst, skew, drift, churn, fault, "
          "metrics)\n",
          name.c_str());
      return 2;
    }
    all.gates.insert(all.gates.end(), rep.gates.begin(), rep.gates.end());
    all.metrics.insert(all.metrics.end(), rep.metrics.begin(),
                       rep.metrics.end());
  }

  bool all_ok = true;
  for (const auto& g : all.gates) all_ok = all_ok && g.Pass();
  std::printf("\nscenarios: %zu gates, %s\n", all.gates.size(),
              all_ok ? "ALL OK" : "BELOW TARGET");

  if (!json_path.empty()) {
    serve::JsonWriter gates;
    for (const auto& g : all.gates) {
      serve::JsonWriter one;
      one.Field("value", g.value);
      one.Field("threshold", g.threshold);
      one.Field("op", g.op);
      if (!g.active) one.Field("active", false);
      one.Field("pass", g.Pass());
      gates.RawField(g.name, one.Finish());
    }
    serve::JsonWriter metrics;
    for (const auto& m : all.metrics) metrics.Field(m.first, m.second);
    serve::JsonWriter doc;
    doc.Field("bench", "scenarios");
    doc.Field("cores", uint64_t(ctx.cores));
    doc.Field("smoke", smoke);
    doc.RawField("gates", gates.Finish());
    doc.RawField("metrics", metrics.Finish());
    doc.Field("pass", all_ok);
    std::ofstream out(json_path);
    out << doc.Finish() << "\n";
    std::printf("wrote scenario gate JSON to %s\n", json_path.c_str());
  }

  return all_ok ? 0 : 1;
}
