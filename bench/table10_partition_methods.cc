/// \file table10_partition_methods.cc
/// \brief Table 10: cover tree (CT) vs random (RP) vs k-means (KM)
/// partitioning on fasttext-l2 with K=3.
///
/// Shape to reproduce: CT slightly better than RP; KM worst (imbalanced
/// partitions).

#include "bench/bench_common.h"
#include "util/table.h"

int main() {
  using namespace selnet;
  bench::PrintBanner("Table 10: partitioning methods (fasttext-l2, K=3)");
  util::ScaleConfig scale = util::GetScaleConfig();
  eval::PreparedData data =
      eval::PrepareData(eval::SettingByName("fasttext-l2"), scale);

  util::AsciiTable table({"Method", "MSE(test)", "MAE(test)", "MAPE(test)"});
  const idx::PartitionMethod kMethods[] = {idx::PartitionMethod::kCoverTree,
                                           idx::PartitionMethod::kRandom,
                                           idx::PartitionMethod::kKMeans};
  for (idx::PartitionMethod method : kMethods) {
    eval::ModelOptions opts;
    opts.partitions = 3;
    opts.partition_method = method;
    auto model = eval::MakeModel(eval::ModelKind::kSelNet, data, opts);
    eval::ModelScores s = eval::TrainAndScore(model.get(), data);
    table.AddRow({std::string(idx::PartitionMethodName(method)) + " (3)",
                  util::AsciiTable::Num(s.test.mse, 1),
                  util::AsciiTable::Num(s.test.mae, 2),
                  util::AsciiTable::Num(s.test.mape, 3)});
  }
  table.Print("Table 10 | errors vs partitioning method, fasttext-l2");
  return 0;
}
