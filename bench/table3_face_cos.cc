/// \file table3_face_cos.cc
/// \brief Table 3: accuracy of all models on face-cos.

#include "bench/bench_common.h"

int main() {
  selnet::bench::PrintBanner("Table 3: accuracy on face-cos");
  auto rows = selnet::bench::RunAccuracyTable("face-cos");
  selnet::eval::PrintAccuracyTable("Table 3 | face-cos", rows);
  return 0;
}
