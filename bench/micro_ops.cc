/// \file micro_ops.cc
/// \brief google-benchmark microbenchmarks for the hot kernels: GEMM (per
/// dispatched micro-kernel, with GFLOP/s), pack-cache hit/build cost,
/// autograd round trips, PWL gather, cover-tree operations and single-query
/// SelNet prediction latency.
///
/// Doubles as the CI kernel-dispatch smoke: with SELNET_REQUIRE_SIMD=1 the
/// process exits non-zero unless runtime dispatch resolved a non-scalar
/// micro-kernel (the SIMD matrix job runs this after ctest).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "autograd/ops.h"
#include "core/selnet_ct.h"
#include "data/synthetic.h"
#include "eval/suite.h"
#include "index/cover_tree.h"
#include "tensor/blas.h"
#include "tensor/kernel_dispatch.h"
#include "tensor/pack_cache.h"

namespace {

using namespace selnet;
using tensor::Matrix;

void BM_Gemm(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  util::Rng rng(1);
  Matrix a = Matrix::Gaussian(n, n, &rng);
  Matrix b = Matrix::Gaussian(n, n, &rng);
  Matrix c(n, n);
  for (auto _ : state) {
    tensor::Gemm(a, false, b, false, 1.0f, 0.0f, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_AutogradMlpRoundTrip(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  util::Rng rng(2);
  nn::Mlp mlp({32, 128, 128, 1}, &rng);
  Matrix x = Matrix::Gaussian(batch, 32, &rng);
  Matrix y = Matrix::Gaussian(batch, 1, &rng);
  for (auto _ : state) {
    ag::ZeroGrad(mlp.Params());
    ag::Var loss = ag::MseLoss(mlp.Forward(ag::Constant(x)), ag::Constant(y));
    ag::Backward(loss);
    benchmark::DoNotOptimize(loss->value(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_AutogradMlpRoundTrip)->Arg(64)->Arg(256);

void BM_PwlGather(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  size_t knots = 52;
  util::Rng rng(3);
  Matrix tau(batch, knots), p(batch, knots), t(batch, 1);
  for (size_t r = 0; r < batch; ++r) {
    float acc_t = 0.0f, acc_p = 0.0f;
    for (size_t k = 0; k < knots; ++k) {
      acc_t += static_cast<float>(rng.Uniform(0.001, 0.05));
      acc_p += static_cast<float>(rng.Uniform(0.0, 10.0));
      tau(r, k) = acc_t;
      p(r, k) = acc_p;
    }
    t(r, 0) = static_cast<float>(rng.Uniform(0.0, acc_t));
  }
  for (auto _ : state) {
    ag::Var out = ag::PiecewiseLinearGather(ag::Constant(tau), ag::Constant(p),
                                            ag::Constant(t));
    benchmark::DoNotOptimize(out->value.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_PwlGather)->Arg(256)->Arg(1024);

void BM_CoverTreeBuild(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  data::SyntheticSpec spec;
  spec.n = n;
  spec.dim = 16;
  Matrix pts = data::GenerateMixture(spec);
  for (auto _ : state) {
    idx::CoverTree tree = idx::CoverTree::Build(pts, data::Metric::kEuclidean);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CoverTreeBuild)->Arg(1000)->Arg(4000);

void BM_CoverTreeRangeCount(benchmark::State& state) {
  data::SyntheticSpec spec;
  spec.n = 4000;
  spec.dim = 16;
  Matrix pts = data::GenerateMixture(spec);
  idx::CoverTree tree = idx::CoverTree::Build(pts, data::Metric::kEuclidean);
  util::Rng rng(4);
  size_t q = 0;
  for (auto _ : state) {
    q = (q + 1) % pts.rows();
    benchmark::DoNotOptimize(tree.RangeCount(pts.row(q), 0.5f));
  }
}
BENCHMARK(BM_CoverTreeRangeCount);

void BM_SelNetPredictSingleQuery(benchmark::State& state) {
  util::ScaleConfig scale;
  scale.scale = util::Scale::kSmoke;
  scale.n = 2000;
  scale.dim = 16;
  scale.num_queries = 50;
  scale.w = 8;
  scale.epochs = 2;
  scale.control_points = 16;
  eval::PreparedData data =
      eval::PrepareData(eval::SettingByName("fasttext-l2"), scale);
  auto model = eval::MakeModel(eval::ModelKind::kSelNetCt, data);
  eval::TrainContext ctx;
  ctx.db = &data.db;
  ctx.workload = &data.workload;
  ctx.epochs = 2;
  model->Fit(ctx);
  Matrix x(1, data.db.dim()), t(1, 1);
  std::copy(data.workload.queries.row(0),
            data.workload.queries.row(0) + data.db.dim(), x.row(0));
  t(0, 0) = data.workload.tmax / 2;
  for (auto _ : state) {
    Matrix out = model->Predict(x, t);
    benchmark::DoNotOptimize(out(0, 0));
  }
}
BENCHMARK(BM_SelNetPredictSingleQuery);

void BM_ExactSelectivityScan(benchmark::State& state) {
  data::SyntheticSpec spec;
  spec.n = static_cast<size_t>(state.range(0));
  spec.dim = 24;
  data::Database db(data::GenerateMixture(spec), data::Metric::kEuclidean);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.ExactSelectivity(db.vector(0), 0.5f));
  }
  state.SetItemsProcessed(state.iterations() * spec.n);
}
BENCHMARK(BM_ExactSelectivityScan)->Arg(2000)->Arg(8000);

// items/s in the report = FLOP/s (items = 2mnk per iteration): read the
// per-kernel GFLOP/s straight off the BM_GemmPackedKernel rows.
void RunPackedKernelBench(benchmark::State& state, const std::string& kernel,
                          size_t n) {
  std::string prev = tensor::ActiveKernel().name;
  tensor::SetActiveKernel(kernel);
  util::Rng rng(12);
  Matrix a = Matrix::Gaussian(n, n, &rng);
  Matrix b = Matrix::Gaussian(n, n, &rng);
  Matrix c(n, n);
  for (auto _ : state) {
    c.Fill(0.0f);
    tensor::GemmNNWithKernel(a, b, 1.0f, &c, tensor::GemmKernel::kPacked);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  tensor::SetActiveKernel(prev);
}

void BM_GemmPrepackedVsRepack(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  bool cached = state.range(1) != 0;
  util::Rng rng(13);
  Matrix a = Matrix::Gaussian(64, n, &rng);
  Matrix b = Matrix::Gaussian(n, n, &rng);
  Matrix c(64, n);
  tensor::PackCache cache;
  for (auto _ : state) {
    c.Fill(0.0f);
    if (cached) {
      tensor::GemmNNPrepacked(a, *cache.Get(b), 1.0f, &c);
    } else {
      tensor::GemmNNWithKernel(a, b, 1.0f, &c, tensor::GemmKernel::kPacked);
    }
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 64 * n * n);
}
BENCHMARK(BM_GemmPrepackedVsRepack)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({512, 0})
    ->Args({512, 1});

}  // namespace

int main(int argc, char** argv) {
  using selnet::tensor::ActiveKernel;
  using selnet::tensor::AvailableKernels;
  for (const auto& kern : AvailableKernels()) {
    for (size_t n : {128, 256}) {
      std::string name = std::string("BM_GemmPackedKernel/") + kern.name + "/" +
                         std::to_string(n);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [kernel = std::string(kern.name), n](benchmark::State& st) {
            RunPackedKernelBench(st, kernel, n);
          });
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::string available;
  for (const auto& kern : AvailableKernels()) {
    available += std::string(available.empty() ? "" : ",") + kern.name;
  }
  std::printf("gemm dispatch: active=%s available=[%s]\n", ActiveKernel().name,
              available.c_str());
  const char* require = std::getenv("SELNET_REQUIRE_SIMD");
  if (require != nullptr && require[0] == '1' &&
      std::string(ActiveKernel().name) == "scalar") {
    std::fprintf(stderr,
                 "SELNET_REQUIRE_SIMD=1 but dispatch picked the scalar "
                 "kernel — SIMD variants missing from this build/host\n");
    return 1;
  }
  return 0;
}
