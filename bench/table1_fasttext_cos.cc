/// \file table1_fasttext_cos.cc
/// \brief Table 1: accuracy of all models on fasttext-cos.
///
/// Paper reference (relative ordering to reproduce): SelNet best on every
/// metric among all ten models; UMNN/RMI the strongest baselines on MSE;
/// consistent models are LSH, KDE, DLN, UMNN, SelNet.

#include "bench/bench_common.h"

int main() {
  selnet::bench::PrintBanner("Table 1: accuracy on fasttext-cos");
  auto rows = selnet::bench::RunAccuracyTable("fasttext-cos");
  selnet::eval::PrintAccuracyTable("Table 1 | fasttext-cos", rows);
  return 0;
}
