/// \file ablation_tau_normalizer.cc
/// \brief Extra ablation (not a paper table): NormL2 vs Softmax for mapping
/// raw tau increments onto the simplex.
///
/// Section 5.2 argues for Norml2 over Softmax analytically: softmax's
/// exponential makes knot positions hypersensitive to small input changes and
/// tends to concentrate mass on a few increments instead of partitioning
/// [0, tmax]. This bench measures that design choice on fasttext-l2 with the
/// SelNet-ct model (isolating the tau head from partitioning effects).

#include "bench/bench_common.h"
#include "core/selnet_ct.h"
#include "util/table.h"

int main() {
  using namespace selnet;
  bench::PrintBanner("Ablation: tau simplex map, NormL2 vs Softmax");
  util::ScaleConfig scale = util::GetScaleConfig();
  eval::PreparedData data =
      eval::PrepareData(eval::SettingByName("fasttext-l2"), scale);
  eval::TrainContext ctx;
  ctx.db = &data.db;
  ctx.workload = &data.workload;
  ctx.epochs = scale.epochs;

  util::AsciiTable table({"tau map", "MSE(valid)", "MSE(test)", "MAE(test)",
                          "MAPE(test)"});
  for (bool softmax : {false, true}) {
    core::SelNetConfig cfg =
        core::SelNetConfig::FromScale(scale, data.db.dim(), data.workload.tmax);
    cfg.softmax_tau = softmax;
    core::SelNetCt model(cfg);
    eval::ModelScores s = eval::TrainAndScore(&model, data);
    table.AddRow({softmax ? "Softmax" : "NormL2 (paper)",
                  util::AsciiTable::Num(s.valid.mse, 1),
                  util::AsciiTable::Num(s.test.mse, 1),
                  util::AsciiTable::Num(s.test.mae, 2),
                  util::AsciiTable::Num(s.test.mape, 3)});
  }
  table.Print("Ablation | tau simplex map (SelNet-ct, fasttext-l2)");
  return 0;
}
