/// \file table5_monotonicity.cc
/// \brief Table 5: empirical monotonicity (%) on face-cos.
///
/// Shape to reproduce: models with guaranteed consistency (LSH, KDE,
/// LightGBM-m, DLN, UMNN, SelNet) score exactly 100%; DNN/MoE/RMI/LightGBM
/// fall below 100%.

#include "bench/bench_common.h"
#include "eval/monotonicity.h"
#include "util/table.h"

int main() {
  using namespace selnet;
  bench::PrintBanner("Table 5: empirical monotonicity on face-cos");
  util::ScaleConfig scale = util::GetScaleConfig();
  eval::PreparedData data =
      eval::PrepareData(eval::SettingByName("face-cos"), scale);

  // The paper averages over 200 queries x 100 thresholds; scale down in
  // proportion to the workload.
  size_t num_queries = std::min<size_t>(scale.num_queries / 2, 100);
  size_t num_thresholds = 40;

  util::AsciiTable table({"Model", "Monotonicity (%)", "Guaranteed"});
  for (eval::ModelKind kind : eval::PaperModels()) {
    if (!eval::ModelSupports(kind, data.db.metric())) continue;
    auto model = eval::MakeModel(kind, data);
    eval::TrainContext ctx;
    ctx.db = &data.db;
    ctx.workload = &data.workload;
    ctx.epochs = scale.epochs;
    model->Fit(ctx);
    double mono = eval::EmpiricalMonotonicity(model.get(), data.workload.queries,
                                              num_queries, data.workload.tmax,
                                              num_thresholds, /*seed=*/17);
    table.AddRow({model->Name(), util::AsciiTable::Num(mono, 2),
                  model->IsConsistent() ? "yes *" : "no"});
  }
  table.Print("Table 5 | empirical monotonicity, face-cos");
  return 0;
}
