/// \file table2_fasttext_l2.cc
/// \brief Table 2: accuracy of all models on fasttext-l2.
///
/// LSH is omitted (SimHash is cosine-only), matching the paper's Table 2.

#include "bench/bench_common.h"

int main() {
  selnet::bench::PrintBanner("Table 2: accuracy on fasttext-l2");
  auto rows = selnet::bench::RunAccuracyTable("fasttext-l2");
  selnet::eval::PrintAccuracyTable("Table 2 | fasttext-l2", rows);
  return 0;
}
